"""The data repository: indexes, statistics, persistence."""

import pytest

from repro.errors import RepositoryError, UnknownGraphError
from repro.graph import Atom, Graph, Oid
from repro.repository import (
    GraphIndex,
    GraphStatistics,
    Repository,
    load_repository,
    save_repository,
)


class TestGraphIndex:
    def test_schema_index(self, fig2_graph):
        index = GraphIndex.build(fig2_graph)
        assert "author" in index.labels()
        assert index.collection_names() == ["Publications"]
        assert index.has_label("year") and not index.has_label("zzz")

    def test_attribute_extent(self, fig2_graph):
        index = GraphIndex.build(fig2_graph)
        extent = index.attribute_extent("author")
        assert len(extent) == 4  # two authors on each of two pubs
        assert all(isinstance(source, Oid) for source, _ in extent)

    def test_forward_and_backward(self, fig2_graph):
        index = GraphIndex.build(fig2_graph)
        years = index.targets(Oid("pub1"), "year")
        assert years == [Atom.int(1997)]
        sources = index.sources("year", Atom.int(1997))
        assert sources == [Oid("pub1")]

    def test_backward_with_coercion(self, fig2_graph):
        index = GraphIndex.build(fig2_graph)
        assert index.sources("year", Atom.string("1997")) == [Oid("pub1")]

    def test_global_value_index(self, fig2_graph):
        index = GraphIndex.build(fig2_graph)
        hits = index.value_occurrences(Atom.string("Mary Fernandez"))
        assert {(str(s), l) for s, l in hits} == {("pub1", "author"),
                                                  ("pub2", "author")}

    def test_value_index_is_global_not_per_attribute(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "x", Atom.string("v"))
        graph.add_edge(Oid("b"), "y", Atom.string("v"))
        index = GraphIndex.build(graph)
        assert len(index.value_occurrences(Atom.string("v"))) == 2

    def test_cardinalities(self, fig2_graph):
        index = GraphIndex.build(fig2_graph)
        assert index.label_cardinality("author") == 4
        assert index.label_cardinality("nope") == 0
        assert index.collection_cardinality("Publications") == 2
        assert index.collection_cardinality("nope") == 0

    def test_freshness_tracking(self, fig2_graph):
        index = GraphIndex.build(fig2_graph)
        assert index.fresh
        fig2_graph.add_edge(Oid("pub1"), "note", Atom.string("new"))
        assert not index.fresh
        index.refresh()
        assert index.fresh
        assert index.label_cardinality("note") == 1


class TestStatistics:
    def test_counts(self, fig2_graph):
        stats = GraphStatistics.gather(fig2_graph)
        assert stats.node_count == 2
        assert stats.edge_count == fig2_graph.edge_count
        assert stats.collection_size("Publications") == 2

    def test_label_stats(self, fig2_graph):
        stats = GraphStatistics.gather(fig2_graph)
        author = stats.labels["author"]
        assert author.edges == 4
        assert author.distinct_sources == 2
        assert author.fan_out == 2.0
        assert stats.label_fan_out("author") == 2.0
        assert stats.label_fan_out("missing") == 0.0

    def test_fan_in(self):
        graph = Graph("g")
        for name in ("a", "b", "c"):
            graph.add_edge(Oid(name), "to", Oid("hub"))
        stats = GraphStatistics.gather(graph)
        assert stats.label_fan_in("to") == 3.0

    def test_equality_selectivity(self, fig2_graph):
        stats = GraphStatistics.gather(fig2_graph)
        # Two distinct years -> selectivity 1/2.
        assert stats.equality_selectivity("year") == pytest.approx(0.5)
        assert stats.equality_selectivity("missing") == 1.0

    def test_any_label_fan_out(self, fig2_graph):
        stats = GraphStatistics.gather(fig2_graph)
        assert stats.any_label_fan_out() == pytest.approx(
            fig2_graph.edge_count / fig2_graph.node_count)

    def test_empty_graph(self):
        stats = GraphStatistics.gather(Graph("g"))
        assert stats.any_label_fan_out() == 0.0


class TestRepository:
    def test_store_and_fetch(self, fig2_graph):
        repo = Repository()
        repo.store(fig2_graph)
        assert repo.graph("BIBTEX") is fig2_graph
        assert "BIBTEX" in repo
        assert [g.name for g in repo] == ["BIBTEX"]

    def test_unknown_graph(self):
        with pytest.raises(UnknownGraphError):
            Repository().graph("nope")

    def test_index_cached_and_rebuilt(self, fig2_graph):
        repo = Repository()
        repo.store(fig2_graph)
        index = repo.index("BIBTEX")
        assert repo.index("BIBTEX") is index
        fig2_graph.add_edge(Oid("pub1"), "note", Atom.string("x"))
        refreshed = repo.index("BIBTEX")
        assert refreshed.label_cardinality("note") == 1

    def test_indexing_disabled(self, fig2_graph):
        repo = Repository(indexing=False)
        repo.store(fig2_graph)
        assert repo.index("BIBTEX") is None

    def test_statistics_cached(self, fig2_graph):
        repo = Repository()
        repo.store(fig2_graph)
        first = repo.statistics("BIBTEX")
        assert repo.statistics("BIBTEX") is first
        fig2_graph.add_edge(Oid("pub2"), "note", Atom.string("x"))
        assert repo.statistics("BIBTEX") is not first

    def test_drop(self, fig2_graph):
        repo = Repository()
        repo.store(fig2_graph)
        repo.drop("BIBTEX")
        assert not repo.has_graph("BIBTEX")
        repo.drop("BIBTEX")  # idempotent


class TestStorage:
    def test_save_load_roundtrip(self, tmp_path, fig2_graph, tiny_graph):
        repo = Repository("mine")
        repo.store(fig2_graph)
        repo.store(tiny_graph)
        save_repository(repo, str(tmp_path))
        back = load_repository(str(tmp_path))
        assert back.database.name == "mine"
        assert back.graph_names() == sorted(["BIBTEX", "tiny"])
        assert back.graph("BIBTEX").edge_count == fig2_graph.edge_count
        assert back.graph("tiny").collection("Root") == [Oid("root")]

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(RepositoryError):
            load_repository(str(tmp_path / "nope"))

    def test_resave_overwrites(self, tmp_path, fig2_graph):
        repo = Repository()
        repo.store(fig2_graph)
        save_repository(repo, str(tmp_path))
        fig2_graph.add_edge(Oid("pub1"), "extra", Atom.int(1))
        save_repository(repo, str(tmp_path))
        back = load_repository(str(tmp_path))
        assert back.graph("BIBTEX").edge_count == fig2_graph.edge_count

    def test_unsafe_graph_names(self, tmp_path):
        repo = Repository()
        graph = Graph("weird/name graph")
        graph.add_edge(Oid("a"), "l", Atom.int(1))
        repo.store(graph)
        save_repository(repo, str(tmp_path))
        back = load_repository(str(tmp_path))
        assert back.has_graph("weird/name graph")
