"""Differential-correctness harness for the materialized-view layer.

The oracle is the paper's own definition: a site *is* its query's
result, so after any sequence of mutations the warm, view-serving
server must agree with a fresh, uncached evaluation.  Two layers pin
that down:

* **byte layer** — every page body must be byte-identical to what a
  brand-new (cold, cache-free) serving stack over the same data
  produces.  Any view that survived an invalidation it shouldn't, any
  single-flight race that cached a pre-change body, any binding cache
  one label too sticky diverges here.
* **edge layer** — every page's outgoing edges must equal, as a
  multiset, the page's edges in a full ``QueryEngine`` evaluation of
  the site query.  This is the paper's semantic definition of the
  site.  It is deliberately order-insensitive: ``SFMTLIST`` without
  ``ORDER`` renders in evaluation-enumeration order, and the seeded
  click-time plan may enumerate the same result in a different order
  than the cold full build — same site, different byte order — so
  byte-identity *across* evaluation strategies is not the invariant;
  set-identity is.

The harness applies hundreds of random additive mutations (the graph
model is additive by design), describes each with a
:class:`~repro.struql.matview.ChangeSummary`, invalidates selectively,
and re-compares **every page**.

Randomness is stdlib ``random`` with pinned seeds (no hypothesis
dependency): every run, locally and in CI, replays the same mutation
scripts.  ``MATVIEW_DIFF_ROUNDS`` scales the round count.
"""

import os
import random
import threading

import pytest

from repro.graph import Atom, Graph, Oid
from repro.site import DynamicSiteServer
from repro.sites.homepage import FIG3_QUERY, fig2_data, fig7_templates
from repro.struql import QueryEngine
from repro.struql.matview import ChangeSummary
from repro.templates import HtmlGenerator, TemplateSet

#: Total randomized mutation rounds across all seeds (acceptance floor
#: is 200).  Override with MATVIEW_DIFF_ROUNDS to go deeper.
ROUNDS = int(os.environ.get("MATVIEW_DIFF_ROUNDS", "220"))

#: Pinned seeds; each seed runs its share of ROUNDS.
SEEDS = (0xA11CE, 0xB0B)

#: Value pools kept small so the page count stays bounded while the
#: mutation space stays interesting.
YEARS = list(range(1995, 2004))
CATEGORIES = ["Semistructured Data", "Query Optimization", "Compilers",
              "Networking", "Databases", "Information Retrieval"]
EXTRA_LABELS = ["note", "keyword", "doi", "award"]

#: Rounds that may add a whole new publication (caps page growth).
NEW_PUB_ROUNDS = 40


def oracle_pages(data: Graph, query: str = FIG3_QUERY,
                 templates=None):
    """Fresh full evaluation: the edge-layer oracle's generator."""
    site = QueryEngine().evaluate(query, data).output
    return HtmlGenerator(site, templates or fig7_templates())


def _edge_multiset(graph, page: Oid):
    return sorted((edge.label, str(edge.target))
                  for edge in graph.out_edges(page))


def assert_server_matches_oracle(server: DynamicSiteServer,
                                 data: Graph, context: str, *,
                                 query: str = FIG3_QUERY,
                                 templates_factory=fig7_templates) -> None:
    """Every page, two layers: view-served body byte-identical to a
    cold serving stack, and page edges set-identical to a full
    evaluation.  Each page is requested twice so the view-hit path is
    exercised too."""
    site = QueryEngine().evaluate(query, data).output
    oracle = HtmlGenerator(site, templates_factory())
    pages = oracle.pages()
    assert pages, "oracle produced no pages"
    cold = DynamicSiteServer(query, data, templates_factory())
    for page in pages:
        expected = cold.request(page)
        assert expected.status == 200, \
            f"{context}: cold {page} -> {expected.status}"
        first = server.request(page)
        assert first.status == 200, f"{context}: {page} -> {first.status}"
        assert first.body == expected.body, f"{context}: stale {page}"
        again = server.request(page)
        assert again.body == expected.body, \
            f"{context}: hit diverged {page}"
        assert _edge_multiset(server.graph, page) == \
            _edge_multiset(site, page), f"{context}: edges diverged {page}"


class Mutator:
    """Random additive mutations with their accurate change summaries."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.pub_count = 0

    def existing_pub(self, data: Graph) -> Oid:
        return self.rng.choice(list(data.collection("Publications")))

    def mutate(self, data: Graph, round_no: int) -> ChangeSummary:
        choices = ["attribute", "year", "category"]
        if round_no < NEW_PUB_ROUNDS:
            choices.append("new_pub")
        kind = self.rng.choice(choices)
        if kind == "attribute":
            label = self.rng.choice(EXTRA_LABELS)
            data.add_edge(self.existing_pub(data), label,
                          Atom.string(f"v{self.rng.randrange(10_000)}"))
            return ChangeSummary.for_labels(label)
        if kind == "year":
            data.add_edge(self.existing_pub(data), "year",
                          Atom.int(self.rng.choice(YEARS)))
            return ChangeSummary.for_labels("year")
        if kind == "category":
            data.add_edge(self.existing_pub(data), "category",
                          Atom.string(self.rng.choice(CATEGORIES)))
            return ChangeSummary.for_labels("category")
        # A whole new publication: collection membership + attributes.
        self.pub_count += 1
        pub = Oid(f"gen-pub{self.pub_count}")
        data.add_to_collection("Publications", pub)
        data.add_edge(pub, "title",
                      Atom.string(f"Generated Paper {self.pub_count}"))
        data.add_edge(pub, "year", Atom.int(self.rng.choice(YEARS)))
        data.add_edge(pub, "category",
                      Atom.string(self.rng.choice(CATEGORIES)))
        return ChangeSummary(
            labels=frozenset({"title", "year", "category"}),
            collections=frozenset({"Publications"}))


class TestDifferentialOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_mutations_never_serve_stale(self, seed):
        rng = random.Random(seed)
        data = fig2_data()
        server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
        mutator = Mutator(rng)
        assert_server_matches_oracle(server, data, "seed start")
        rounds = max(1, ROUNDS // len(SEEDS))
        for round_no in range(rounds):
            # Mostly selective invalidation (update() adopts the
            # ChangeSummary the mutator returns); every ~10th round
            # forces the full-drop path so both stay verified.
            if rng.random() < 0.1:
                server.update(
                    lambda graph: mutator.mutate(graph, round_no),
                    ChangeSummary.full_change())
            else:
                server.update(
                    lambda graph: mutator.mutate(graph, round_no))
            assert_server_matches_oracle(
                server, data, f"seed={seed:#x} round={round_no}")
        # The LRU bounds held throughout.
        assert len(server.matviews) <= server.matviews.max_views
        stats = server.cache_snapshot()
        assert stats["page_cache_size"] <= stats["max_pages"]
        assert stats["bindings_cache_size"] <= stats["max_pages"]

    #: A site whose every read is narrow — no ``x -> l -> v`` wildcard
    #: anywhere — so body footprints stay precise and selective drops
    #: are observable at the matview layer.
    NARROW_QUERY = """
        input G
        where Pubs(x), x -> "year" -> y
        create Root(), YearPage(y)
        link Root() -> "YearPage" -> YearPage(y),
             YearPage(y) -> "Year" -> y
        output S
    """

    @staticmethod
    def narrow_templates():
        templates = TemplateSet()
        templates.add("Root", """<HTML><BODY>
<SFMTLIST @YearPage ORDER=ascend KEY=Year WRAP=UL>
</BODY></HTML>""")
        templates.add("YearPage", """<HTML><BODY>
Year <SFMT @Year>
</BODY></HTML>""")
        return templates

    def _narrow_data(self):
        data = Graph("G")
        for name, year in (("pub1", 1997), ("pub2", 1998)):
            pub = Oid(name)
            data.add_to_collection("Pubs", pub)
            data.add_edge(pub, "year", Atom.int(year))
        return data

    def test_footprint_precision_keeps_unrelated_views(self):
        """A change outside a view's footprint must not recompute it."""
        data = self._narrow_data()
        server = DynamicSiteServer(
            self.NARROW_QUERY, data, self.narrow_templates())
        root = Oid.skolem("Root", ())
        year_page = Oid.skolem("YearPage", (Atom.int(1997),))
        server.request(root)
        server.request(year_page)
        misses_before = server.matviews.stats["misses"]

        # A "note" edge is outside every footprint here (all reads
        # narrow to Pubs + "year"), so both bodies survive the drop.
        server.update(
            lambda graph: graph.add_edge(
                Oid("pub1"), "note", Atom.string("kept")),
            ChangeSummary.for_labels("note"))
        server.request(root)
        server.request(year_page)
        assert server.matviews.stats["misses"] == misses_before

        # A "year" edge intersects both: they recompute — correctly.
        server.update(
            lambda graph: graph.add_edge(
                Oid("pub1"), "year", Atom.int(2003)),
            ChangeSummary.for_labels("year"))
        fresh = server.request(root)
        assert "2003" in fresh.body
        assert server.matviews.stats["misses"] > misses_before
        assert_server_matches_oracle(
            server, data, "precision", query=self.NARROW_QUERY,
            templates_factory=self.narrow_templates)

    def test_collection_precision_on_fig3(self):
        """Fig 3 bodies traverse the ``x -> l -> v`` wildcard, so any
        *label* change drops them — but a change confined to a
        collection none of them read leaves every body cached."""
        data = fig2_data()
        server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
        for page in oracle_pages(data).pages():
            server.request(page)
        misses_before = server.matviews.stats["misses"]
        server.update(
            lambda graph: graph.add_to_collection("People", Oid("mff")),
            ChangeSummary.for_collections("People"))
        for page in oracle_pages(data).pages():
            server.request(page)
        assert server.matviews.stats["misses"] == misses_before


class TestConcurrentStress:
    READERS = 8
    REQUESTS_PER_READER = 120
    WRITER_MUTATIONS = 30

    def test_mixed_gets_updates_invalidations(self):
        rng = random.Random(0xC0FFEE)
        data = fig2_data()
        server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
        # URLs known before any mutation: additive data means they
        # never disappear, so every read must answer 200.  Priming by
        # oid teaches the router every route up front (routes are
        # discovered as pages materialize, and must then survive every
        # flush the writer triggers).
        oracle = oracle_pages(data)
        urls = [oracle.url_for(page) for page in oracle.pages()]
        for page in oracle.pages():
            assert server.request(page).status == 200
        failures: list[BaseException] = []
        statuses: set[int] = set()
        mutator = Mutator(random.Random(0xD1CE))
        start = threading.Barrier(self.READERS + 1)

        def reader(seed: int) -> None:
            local = random.Random(seed)
            try:
                start.wait(10)
                for _ in range(self.REQUESTS_PER_READER):
                    response = server.request(local.choice(urls))
                    statuses.add(response.status)
            except BaseException as exc:  # noqa: BLE001 — collected
                failures.append(exc)

        def writer() -> None:
            try:
                start.wait(10)
                for i in range(self.WRITER_MUTATIONS):
                    if rng.random() < 0.2:  # full drop path
                        server.update(
                            lambda graph, i=i: mutator.mutate(graph, i),
                            ChangeSummary.full_change())
                    else:
                        server.update(
                            lambda graph, i=i: mutator.mutate(graph, i))
            except BaseException as exc:  # noqa: BLE001 — collected
                failures.append(exc)

        threads = [threading.Thread(target=reader, args=(1000 + i,))
                   for i in range(self.READERS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not any(t.is_alive() for t in threads), "threads hung"
        assert not failures, failures
        assert statuses == {200}
        # No stale-after-invalidate: with the writer quiescent, every
        # page serves exactly the oracle's bytes.
        assert_server_matches_oracle(server, data, "post-stress")
        # Bounds held under fire.
        assert len(server.matviews) <= server.matviews.max_views
        stats = server.cache_snapshot()
        assert stats["page_cache_size"] <= stats["max_pages"]
        assert stats["bindings_cache_size"] <= stats["max_pages"]
        registry = server.matviews.stats
        assert registry["misses"] > 0
        assert registry["invalidations"] >= self.WRITER_MUTATIONS
