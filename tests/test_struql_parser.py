"""The StruQL parser: grammar coverage, block structure, static checks."""

import pytest

from repro.errors import StruQLSemanticError, StruQLSyntaxError
from repro.graph import Atom
from repro.struql import (
    ANY_PATH,
    AnyLabel,
    ComparisonCond,
    Const,
    InCond,
    LabelEquals,
    LabelPredicate,
    MembershipCond,
    NotCond,
    PathCond,
    RAlt,
    RConcat,
    RLabel,
    RStar,
    SkolemTerm,
    Var,
    parse_query,
)


def single_where(text: str):
    query = parse_query(f"input G where {text} create X() output O")
    blocks = [b for b in query.blocks() if b.conditions]
    assert len(blocks) == 1
    return blocks[0].conditions


class TestConditions:
    def test_membership(self):
        (cond,) = single_where("HomePages(p)")
        assert cond == MembershipCond("HomePages", (Var("p"),))

    def test_predicate_with_constant(self):
        (cond,) = single_where('startsWith(p, "A")')
        assert cond.name == "startsWith"
        assert cond.args[1] == Const(Atom.string("A"))

    def test_arc_variable_edge(self):
        (cond,) = single_where("x -> l -> v")
        assert cond == PathCond(Var("x"), Var("v"), arc_var="l")

    def test_label_constant_edge(self):
        (cond,) = single_where('x -> "Paper" -> q')
        assert cond.path == RLabel(LabelEquals("Paper"))

    def test_star_is_any_path(self):
        (cond,) = single_where("x -> * -> q")
        assert cond.path == ANY_PATH

    def test_chain_expands(self):
        conds = single_where('x -> * -> y -> l -> z')
        assert len(conds) == 2
        assert conds[0].target == Var("y")
        assert conds[1] == PathCond(Var("y"), Var("z"), arc_var="l")

    def test_comparison_ops(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            (cond,) = single_where(f"l {op} 3")
            assert cond == ComparisonCond(Var("l"), op, Const(Atom.int(3)))

    def test_in_condition(self):
        (cond,) = single_where('l in {"Paper", "TechReport"}')
        assert isinstance(cond, InCond)
        assert len(cond.values) == 2

    def test_negation(self):
        (cond,) = single_where("not(isImageFile(q))")
        assert isinstance(cond, NotCond)
        assert isinstance(cond.inner, MembershipCond)

    def test_negated_path(self):
        (cond,) = single_where("not(p -> l -> q)")
        assert isinstance(cond.inner, PathCond)

    def test_negated_chain_rejected(self):
        with pytest.raises(StruQLSyntaxError):
            single_where("not(p -> l -> q -> m -> r)")

    def test_and_separator(self):
        conds = single_where("A(x) and B(y)")
        assert len(conds) == 2

    def test_semicolon_separator(self):
        conds = single_where("A(x); B(y)")
        assert len(conds) == 2

    def test_constant_endpoints(self):
        (cond,) = single_where('x -> "year" -> 1997')
        assert cond.target == Const(Atom.int(1997))

    def test_negative_constant(self):
        (cond,) = single_where("v < -3")
        assert cond.right == Const(Atom.int(-3))


class TestRegularPaths:
    def path(self, text: str):
        (cond,) = single_where(f"x -> {text} -> y")
        return cond.path

    def test_alternation(self):
        path = self.path('("a" | "b")')
        assert path == RAlt((RLabel(LabelEquals("a")),
                             RLabel(LabelEquals("b"))))

    def test_concatenation(self):
        path = self.path('("a" . "b")')
        assert path == RConcat((RLabel(LabelEquals("a")),
                                RLabel(LabelEquals("b"))))

    def test_closure(self):
        path = self.path('"a"*')
        assert path == RStar(RLabel(LabelEquals("a")))

    def test_predicate_star(self):
        path = self.path("isName*")
        assert path == RStar(RLabel(LabelPredicate("isName")))

    def test_true_is_any_label(self):
        path = self.path("true")
        assert path == RLabel(AnyLabel())

    def test_precedence_star_binds_tightest(self):
        path = self.path('("a"."b"* | "c")')
        assert isinstance(path, RAlt)
        concat = path.options[0]
        assert isinstance(concat, RConcat)
        assert isinstance(concat.parts[1], RStar)

    def test_double_star(self):
        path = self.path('"a"**')
        assert path == RStar(RStar(RLabel(LabelEquals("a"))))

    def test_renders_back(self):
        path = self.path('("a" . ("b" | "c")*)')
        assert str(path) == '"a".("b"|"c")*'


class TestBlocks:
    def test_fig3_block_structure(self, fig3_query):
        # Top block: 2 creates, 1 link, no conditions (governed by true);
        # one child Q1 with two nested children Q2, Q3.
        root = fig3_query.root
        assert [str(c) for c in root.creates] == ["RootPage()",
                                                  "AbstractsPage()"]
        assert not root.conditions
        assert len(root.children) == 1
        q1 = root.children[0]
        assert q1.label == "Q1" and len(q1.conditions) == 2
        assert len(q1.children) == 2
        assert q1.children[0].label == "Q2"
        assert q1.children[1].label == "Q3"

    def test_sequential_where_conjoins(self):
        query = parse_query("""
        input G
        where A(x)
        create P(x)
        where x -> "f" -> y
        create Q(y)
        link Q(y) -> "of" -> P(x)
        output O
        """)
        blocks = list(query.blocks())
        # The first where binds to the root block; the second opens an
        # implicit child whose conditions conjoin with the first.
        assert len(blocks) == 2
        assert blocks[0].label == "Q1"
        assert blocks[1].label == "Q2"
        assert blocks[1].conditions[0].path is not None
        assert blocks[1].links  # the link is governed by Q1 ^ Q2

    def test_link_count(self, fig3_query):
        assert fig3_query.link_count() == 11

    def test_skolem_functions(self, fig3_query):
        assert set(fig3_query.skolem_functions()) == {
            "RootPage", "AbstractsPage", "PaperPresentation",
            "AbstractPage", "YearPage", "CategoryPage"}


class TestSemanticChecks:
    def test_link_source_must_be_skolem(self):
        with pytest.raises(StruQLSemanticError):
            parse_query("""
            input G
            where A(x), x -> "f" -> y
            create F(y)
            link x -> "A" -> F(y)
            output O
            """)

    def test_link_target_may_be_existing(self):
        query = parse_query("""
        input G
        where A(x)
        create F(x)
        link F(x) -> "A" -> x
        output O
        """)
        assert query.link_count() == 1

    def test_skolem_must_be_created_somewhere(self):
        with pytest.raises(StruQLSemanticError):
            parse_query("""
            input G
            where A(x)
            create F(x)
            link F(x) -> "to" -> G(x)
            output O
            """)

    def test_skolem_arity_checked(self):
        with pytest.raises(StruQLSemanticError):
            parse_query("""
            input G
            where A(x), B(y)
            create F(x)
            link F(x, y) -> "to" -> F(x)
            output O
            """)

    def test_unbound_variable_in_link(self):
        with pytest.raises(StruQLSemanticError):
            parse_query("""
            input G
            where A(x)
            create F(x)
            link F(x) -> "to" -> z
            output O
            """)

    def test_unbound_arc_variable_in_link(self):
        with pytest.raises(StruQLSemanticError):
            parse_query("""
            input G
            where A(x)
            create F(x)
            link F(x) -> m -> x
            output O
            """)

    def test_nested_block_sees_ancestor_bindings(self):
        query = parse_query("""
        input G
        where A(x)
        create F(x)
        { where x -> "f" -> y
          link F(x) -> "to" -> y }
        output O
        """)
        assert query.link_count() == 1

    def test_create_in_nested_usable_by_sibling_links(self):
        # Skolem functions are global across the query.
        parse_query("""
        input G
        { where A(x) create F(x) }
        { where A(x) create G2(x) link G2(x) -> "peer" -> F(x) }
        output O
        """)


class TestSyntaxErrors:
    @pytest.mark.parametrize("bad", [
        "where A(x) create X() output O",          # missing input
        "input G where A(x) create X()",           # missing output
        "input G where A(x) create X() output O trailing",
        "input G where create X() output O",
        "input G where A(x) link -> output O",
        "input G where A(x) create X( output O",
        'input G where x -> -> y create X() output O',
        "input G where A(x) create X() link X() output O",
    ])
    def test_rejected(self, bad):
        with pytest.raises((StruQLSyntaxError, StruQLSemanticError)):
            parse_query(bad)

    def test_error_carries_position(self):
        with pytest.raises(StruQLSyntaxError) as err:
            parse_query("input G\nwhere ???\noutput O")
        assert err.value.line == 2

    def test_keywords_case_insensitive(self):
        query = parse_query(
            "INPUT g WHERE A(x) CREATE F(x) Output o")
        assert query.input_name == "g" and query.output_name == "o"

    def test_comments_everywhere(self):
        parse_query("""
        input G  // comment
        where A(x) /* block */ , B(x)
        create F(x)  # hash comment
        output O
        """)
