"""The HTML generator: selection rules, realization rules, site output."""

import os

import pytest

from repro.errors import MissingTemplateError, TemplateEvalError
from repro.graph import Atom, AtomType, Graph, Oid
from repro.templates import TEMPLATE_ATTRIBUTE, HtmlGenerator, TemplateSet


@pytest.fixture
def pub_graph() -> Graph:
    graph = Graph("site")
    pub = Oid("pub")
    graph.add_edge(pub, "title", Atom.string("A <Great> Paper"))
    graph.add_edge(pub, "year", Atom.int(1997))
    graph.add_edge(pub, "author", Atom.string("B. Author"))
    graph.add_edge(pub, "author", Atom.string("A. Author"))
    graph.add_edge(pub, "postscript", Atom.file("papers/x.ps"))
    graph.add_edge(pub, "figure", Atom.file("fig.gif"))
    graph.add_edge(pub, "home", Atom.url("http://example.com/"))
    graph.add_to_collection("Publications", pub)
    return graph


def render(graph: Graph, oid_name: str, template: str,
           register_as: str | None = None, **extra) -> str:
    templates = TemplateSet()
    templates.add(register_as or oid_name, template)
    for name, (text, as_page) in extra.items():
        templates.add(name, text, as_page=as_page)
    return HtmlGenerator(graph, templates).render(Oid(oid_name))


class TestFormatRules:
    def test_string_escaped(self, pub_graph):
        html = render(pub_graph, "pub", "<SFMT @title>")
        assert "A &lt;Great&gt; Paper" in html

    def test_int_as_text(self, pub_graph):
        assert render(pub_graph, "pub", "<SFMT @year>") == "1997"

    def test_postscript_becomes_link(self, pub_graph):
        html = render(pub_graph, "pub", "<SFMT @postscript>")
        assert html == '<a href="papers/x.ps">papers/x.ps</a>'

    def test_postscript_with_tag(self, pub_graph):
        html = render(pub_graph, "pub", "<SFMT @postscript TAG=@title>")
        assert 'href="papers/x.ps"' in html
        assert "A &lt;Great&gt; Paper</a>" in html

    def test_image_becomes_img(self, pub_graph):
        html = render(pub_graph, "pub", "<SFMT @figure>")
        assert html.startswith('<img src="fig.gif"')

    def test_url_becomes_anchor(self, pub_graph):
        html = render(pub_graph, "pub", "<SFMT @home>")
        assert html == ('<a href="http://example.com/">'
                        "http://example.com/</a>")

    def test_force_link_format(self, pub_graph):
        html = render(pub_graph, "pub", "<SFMT @title FORMAT=LINK>")
        assert html.startswith("<a href=")

    def test_missing_attribute_renders_empty(self, pub_graph):
        assert render(pub_graph, "pub", "[<SFMT @nothing>]") == "[]"

    def test_multivalued_takes_first(self, pub_graph):
        assert render(pub_graph, "pub", "<SFMT @author>") == "B. Author"

    def test_text_file_embeds_via_loader(self, pub_graph):
        pub = Oid("pub")
        pub_graph.add_edge(pub, "abstract", Atom.file("a.txt"))
        templates = TemplateSet()
        templates.add("pub", "<SFMT @abstract>")
        generator = HtmlGenerator(pub_graph, templates,
                                  loader=lambda path: f"<contents of {path}>")
        assert generator.render(pub) == "&lt;contents of a.txt&gt;"

    def test_text_file_without_loader_shows_path(self, pub_graph):
        pub = Oid("pub")
        pub_graph.add_edge(pub, "abstract", Atom.file("a.txt"))
        assert render(pub_graph, "pub", "<SFMT @abstract>") == "a.txt"


class TestConditionals:
    def test_exists_true_branch(self, pub_graph):
        assert render(pub_graph, "pub",
                      "<SIF @title>yes<SELSE>no</SIF>") == "yes"

    def test_exists_false_branch(self, pub_graph):
        assert render(pub_graph, "pub",
                      "<SIF @nope>yes<SELSE>no</SIF>") == "no"

    def test_null_test(self, pub_graph):
        assert render(pub_graph, "pub",
                      "<SIF @nope = NULL>missing</SIF>") == "missing"
        assert render(pub_graph, "pub",
                      "<SIF @title != NULL>present</SIF>") == "present"

    def test_numeric_comparison_with_coercion(self, pub_graph):
        assert render(pub_graph, "pub",
                      '<SIF (@year < "2000")>old</SIF>') == "old"

    def test_boolean_connectives(self, pub_graph):
        html = render(pub_graph, "pub",
                      "<SIF @title AND @year>both</SIF>")
        assert html == "both"
        html = render(pub_graph, "pub",
                      "<SIF @nope OR @year>one</SIF>")
        assert html == "one"
        html = render(pub_graph, "pub",
                      "<SIF NOT @nope>none</SIF>")
        assert html == "none"

    def test_missing_vs_value_comparison(self, pub_graph):
        assert render(pub_graph, "pub",
                      '<SIF @nope = "x">eq<SELSE>ne</SIF>') == "ne"
        assert render(pub_graph, "pub",
                      '<SIF @nope != "x">ne</SIF>') == "ne"


class TestIteration:
    def test_sfor_basic(self, pub_graph):
        html = render(pub_graph, "pub",
                      '<SFOR a @author DELIM=", "><SFMT @a></SFOR>')
        assert html == "B. Author, A. Author"

    def test_sfor_ordered(self, pub_graph):
        html = render(pub_graph, "pub",
                      '<SFOR a @author ORDER=ascend DELIM="; ">'
                      "<SFMT @a></SFOR>")
        assert html == "A. Author; B. Author"

    def test_sfor_descend(self, pub_graph):
        html = render(pub_graph, "pub",
                      '<SFOR a @author ORDER=descend DELIM="; ">'
                      "<SFMT @a></SFOR>")
        assert html == "B. Author; A. Author"

    def test_sfor_variable_shadowing(self, pub_graph):
        # The loop variable wins over a same-named attribute.
        html = render(pub_graph, "pub",
                      "<SFOR title @author><SFMT @title></SFOR>")
        assert html == "B. AuthorA. Author"

    def test_sfmtlist_wrap_ul(self, pub_graph):
        html = render(pub_graph, "pub",
                      "<SFMTLIST @author ORDER=ascend WRAP=UL>")
        assert html == ("<ul><li>A. Author</li><li>B. Author</li></ul>")

    def test_sfmtlist_default_delim(self, pub_graph):
        html = render(pub_graph, "pub", "<SFMTLIST @author>")
        assert html == "B. Author, A. Author"


class TestObjectRealization:
    @pytest.fixture
    def linked(self) -> Graph:
        graph = Graph("site")
        page, comp = Oid("page"), Oid("comp")
        graph.add_edge(page, "part", comp)
        graph.add_edge(comp, "label", Atom.string("inner"))
        graph.add_edge(page, "peer", Oid("other"))
        graph.add_edge(Oid("other"), "title", Atom.string("Other Page"))
        return graph

    def test_component_embeds_by_default(self, linked):
        templates = TemplateSet()
        templates.add("page", "[<SFMT @part>]")
        templates.add("comp", "<SFMT @label>", as_page=False)
        html = HtmlGenerator(linked, templates).render(Oid("page"))
        assert html == "[inner]"

    def test_page_links_by_default(self, linked):
        templates = TemplateSet()
        templates.add("page", "[<SFMT @peer>]")
        templates.add("other", "x")
        html = HtmlGenerator(linked, templates).render(Oid("page"))
        assert html == '[<a href="other.html">Other Page</a>]'

    def test_embed_overrides_pageness(self, linked):
        templates = TemplateSet()
        templates.add("page", "[<SFMT @peer FORMAT=EMBED>]")
        templates.add("other", "embedded!")
        html = HtmlGenerator(linked, templates).render(Oid("page"))
        assert html == "[embedded!]"

    def test_untemplated_object_falls_back_to_title(self, linked):
        templates = TemplateSet()
        templates.add("page", "[<SFMT @peer>]")
        html = HtmlGenerator(linked, templates).render(Oid("page"))
        assert html == "[Other Page]"

    def test_embedding_cycle_detected(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "next", Oid("b"))
        graph.add_edge(Oid("b"), "next", Oid("a"))
        templates = TemplateSet()
        templates.add("a", "<SFMT @next FORMAT=EMBED>", as_page=False)
        templates.add("b", "<SFMT @next FORMAT=EMBED>", as_page=False)
        with pytest.raises(TemplateEvalError):
            HtmlGenerator(graph, templates).render(Oid("a"))


class TestSelection:
    def test_object_specific_beats_collection(self, pub_graph):
        templates = TemplateSet()
        templates.add("pub", "SPECIFIC")
        templates.add("Publications", "COLLECTION")
        html = HtmlGenerator(pub_graph, templates).render(Oid("pub"))
        assert html == "SPECIFIC"

    def test_html_template_attribute(self, pub_graph):
        pub_graph.add_edge(Oid("pub"), TEMPLATE_ATTRIBUTE,
                           Atom.string("fancy"))
        templates = TemplateSet()
        templates.add("fancy", "FANCY")
        templates.add("Publications", "COLLECTION")
        html = HtmlGenerator(pub_graph, templates).render(Oid("pub"))
        assert html == "FANCY"

    def test_skolem_function_name(self, fig4_site):
        templates = TemplateSet()
        templates.add("YearPage", "Year: <SFMT @Year>")
        generator = HtmlGenerator(fig4_site, templates)
        year = next(n for n in fig4_site.nodes()
                    if n.skolem_fn == "YearPage")
        assert generator.render(year).startswith("Year: ")

    def test_collection_fallback(self, pub_graph):
        templates = TemplateSet()
        templates.add("Publications", "COLLECTION")
        html = HtmlGenerator(pub_graph, templates).render(Oid("pub"))
        assert html == "COLLECTION"

    def test_no_template_raises(self, pub_graph):
        generator = HtmlGenerator(pub_graph, TemplateSet())
        with pytest.raises(MissingTemplateError):
            generator.render(Oid("pub"))

    def test_template_line_counting(self):
        templates = TemplateSet()
        templates.add("a", "one\ntwo\nthree")
        templates.add("b", "single")
        assert templates.total_lines() == 4
        assert templates.names() == ["a", "b"]


class TestSiteOutput:
    def test_generate_site_writes_pages(self, fig4_site, tmp_path):
        from repro.sites.homepage import fig7_templates
        generator = HtmlGenerator(fig4_site, fig7_templates())
        written = generator.generate_site(str(tmp_path))
        # 1 root + 1 abstracts + 2 years + 3 categories + 2 abstract
        # pages = 9 pages; presentations embed, so no files for them.
        assert len(written) == 9
        for path in written.values():
            assert os.path.exists(path)
        root_html = open(written[Oid.skolem("RootPage", ())]).read()
        assert "YearPage_1997_.html" in root_html

    def test_urls_are_filesystem_safe(self, fig4_site):
        generator = HtmlGenerator(fig4_site, TemplateSet())
        for node in fig4_site.nodes():
            url = generator.url_for(node)
            assert "/" not in url and url.endswith(".html")


class TestGeneratorEdgeCases:
    def test_default_title_probes_attributes(self):
        graph = Graph("g")
        a, b = Oid("a"), Oid("b")
        graph.add_edge(a, "ref", b)
        graph.add_edge(b, "name", Atom.string("Named Thing"))
        templates = TemplateSet()
        templates.add("a", "<SFMT @ref>")
        templates.add("b", "irrelevant")
        html = HtmlGenerator(graph, templates).render(a)
        assert ">Named Thing</a>" in html

    def test_default_title_falls_back_to_oid(self):
        graph = Graph("g")
        a, b = Oid("a"), Oid("mystery")
        graph.add_edge(a, "ref", b)
        templates = TemplateSet()
        templates.add("a", "<SFMT @ref>")
        templates.add("mystery", "x")
        html = HtmlGenerator(graph, templates).render(a)
        assert ">mystery</a>" in html

    def test_sfor_key_missing_sorts_first(self):
        graph = Graph("g")
        page = Oid("p")
        with_key, without = Oid("w"), Oid("wo")
        graph.add_edge(page, "item", without)
        graph.add_edge(page, "item", with_key)
        graph.add_edge(with_key, "k", Atom.string("z"))
        graph.add_edge(with_key, "t", Atom.string("W"))
        graph.add_edge(without, "t", Atom.string("WO"))
        templates = TemplateSet()
        templates.add("p", '<SFOR i @item ORDER=ascend KEY=k DELIM=",">'
                           "<SFMT @i.t></SFOR>")
        html = HtmlGenerator(graph, templates).render(page)
        assert html == "WO,W"  # missing key sorts as empty string

    def test_mixed_numeric_and_text_keys_sort_lexically(self):
        graph = Graph("g")
        page = Oid("p")
        for value in ("10", "9", "abc"):
            graph.add_edge(page, "v", Atom.string(value))
        templates = TemplateSet()
        templates.add("p", '<SFOR x @v ORDER=ascend DELIM=",">'
                           "<SFMT @x></SFOR>")
        html = HtmlGenerator(graph, templates).render(page)
        assert html == "10,9,abc"  # lexicographic when not all numeric

    def test_all_numeric_keys_sort_numerically(self):
        graph = Graph("g")
        page = Oid("p")
        for value in ("10", "9", "111"):
            graph.add_edge(page, "v", Atom.string(value))
        templates = TemplateSet()
        templates.add("p", '<SFOR x @v ORDER=ascend DELIM=",">'
                           "<SFMT @x></SFOR>")
        html = HtmlGenerator(graph, templates).render(page)
        assert html == "9,10,111"

    def test_sfmtlist_tag_attr_expr(self, fig4_site):
        from repro.sites.homepage import fig7_templates
        templates = TemplateSet()
        templates.add("RootPage",
                      "<SFMTLIST @YearPage TAG=@Year DELIM=\" | \">")
        generator = HtmlGenerator(fig4_site, templates)
        html = generator.render(Oid.skolem("RootPage", ()))
        # TAG resolves against each *page object's* default title if an
        # attr expr; here it resolves against the root (no Year attr),
        # so the year pages fall back to their own titles.
        assert "1997" in html and "1998" in html

    def test_dotted_expression_through_multivalued(self, fig4_site):
        templates = TemplateSet()
        templates.add("AbstractsPage", "<SFMT @Abstract.title>")
        generator = HtmlGenerator(fig4_site, templates)
        html = generator.render(Oid.skolem("AbstractsPage", ()))
        assert html  # first abstract page's title text

    def test_pages_listing_is_stable(self, fig4_site):
        from repro.sites.homepage import fig7_templates
        generator = HtmlGenerator(fig4_site, fig7_templates())
        assert generator.pages() == generator.pages()
