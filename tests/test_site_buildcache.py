"""The parallel, content-hash-cached build pipeline (PR 7 tentpole).

Correctness contract: a cached (incremental) build must be
byte-for-byte identical to a cold build, a rebuild of an unchanged
site must render nothing, and any template or reachable-data change
must invalidate exactly the affected pages.

``TestRandomEditScripts`` turns that contract into a property: random
edit scripts over the data graph, with the incremental output tree
compared file-for-file against a cold build after every step.
"""

import os
import random

import pytest

from repro.graph import Atom, Oid
from repro.site.buildcache import (
    BuildCache,
    cached_generate,
    hash_templates,
    page_fingerprint,
    resolve_jobs,
)
from repro.site.builder import Website
from repro.sites.homepage import FIG3_QUERY, fig2_data, fig7_templates
from repro.templates.generator import HtmlGenerator


def _site(data=None, templates=None):
    return Website(data or fig2_data(), FIG3_QUERY,
                   templates=templates or fig7_templates())


def _read_tree(root):
    tree = {}
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if os.path.isfile(path):
            with open(path, encoding="utf-8") as handle:
                tree[name] = handle.read()
    return tree


class TestFingerprints:
    def test_stable_across_rebuilds(self):
        a, b = _site(), _site()
        page = Oid.skolem("RootPage", ())
        assert page_fingerprint(a.site_graph, page) == \
            page_fingerprint(b.site_graph, page)

    def test_sensitive_to_reachable_change(self):
        changed = fig2_data()
        changed.add_edge(Oid("pub1"), "note", Atom.string("errata"))
        a, b = _site(), _site(changed)
        # pub1 is reachable from the 1997 YearPage but not the 1998 one.
        year97 = Oid.skolem("YearPage", (Atom.int(1997),))
        year98 = Oid.skolem("YearPage", (Atom.int(1998),))
        assert page_fingerprint(a.site_graph, year97) != \
            page_fingerprint(b.site_graph, year97)
        assert page_fingerprint(a.site_graph, year98) == \
            page_fingerprint(b.site_graph, year98)

    def test_template_hash_covers_source_and_pageness(self):
        base = fig7_templates()
        edited = fig7_templates()
        edited.add("RootPage", "<h1>changed</h1>", as_page=True)
        assert hash_templates(base) != hash_templates(edited)
        assert hash_templates(base) == hash_templates(fig7_templates())


class TestBuildCache:
    def test_cold_build_equals_plain_build(self, tmp_path):
        plain, cached = str(tmp_path / "plain"), str(tmp_path / "cached")
        _site().build_site(plain)
        report = _site().build_site(cached,
                                    cache_dir=str(tmp_path / "cache"))
        assert report.reason == "cold"
        assert _read_tree(plain) == _read_tree(cached)

    def test_warm_rebuild_renders_nothing(self, tmp_path):
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        _site().build_site(out, cache_dir=cache)
        before = _read_tree(out)
        report = _site().build_site(out, cache_dir=cache)
        assert report.pages_rendered == 0
        assert report.pages_skipped > 0
        assert report.reason == "incremental"
        assert report.cache_hit_ratio == 1.0
        assert _read_tree(out) == before

    def test_template_edit_invalidates_everything(self, tmp_path):
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        _site().build_site(out, cache_dir=cache)
        edited = fig7_templates()
        edited.add("RootPage", "<h1>v2</h1><SFMTLIST @YearPage WRAP=UL>",
                   as_page=True)
        report = _site(templates=edited).build_site(out, cache_dir=cache)
        assert report.reason == "templates-changed"
        assert report.pages_skipped == 0
        with open(os.path.join(out, "RootPage__.html"),
                  encoding="utf-8") as handle:
            assert "v2" in handle.read()

    def test_data_change_rerenders_only_affected(self, tmp_path):
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        cold = _site().build_site(out, cache_dir=cache)
        changed = fig2_data()
        changed.add_edge(Oid("pub1"), "note", Atom.string("errata"))
        report = _site(changed).build_site(out, cache_dir=cache)
        assert report.reason == "incremental"
        assert 0 < report.pages_rendered < cold.pages_rendered
        rendered = {str(p) for p in report.written}
        # The 1998 year page cannot reach pub1: it must be cached.
        assert "YearPage(1998)" not in rendered
        # The cached result matches a from-scratch build exactly.
        fresh = str(tmp_path / "fresh")
        _site(changed).build_site(fresh)
        assert _read_tree(out) == _read_tree(fresh)

    def test_removed_page_file_deleted(self, tmp_path):
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        grown = fig2_data()
        pub3 = Oid("pub3")
        grown.add_to_collection("Publications", pub3)
        grown.add_edge(pub3, "year", Atom.int(1999))
        grown.add_edge(pub3, "title", Atom.string("Gone Soon"))
        _site(grown).build_site(out, cache_dir=cache)
        gone = os.path.join(out, "YearPage_1999_.html")
        assert os.path.exists(gone)
        report = _site().build_site(out, cache_dir=cache)
        assert not os.path.exists(gone)
        assert any(path.endswith("YearPage_1999_.html")
                   for path in report.removed_files)
        fresh = str(tmp_path / "fresh")
        _site().build_site(fresh)
        assert _read_tree(out) == _read_tree(fresh)

    def test_collection_only_change_falls_back_soundly(self, tmp_path):
        """Collection-membership deltas have no edge diff; the planner
        must fingerprint rather than trust ``dirty_pages``."""
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        site = _site()
        site.build_site(out, cache_dir=cache)
        # Tag an existing site-graph node into a new collection in the
        # cached old graph via a direct manifest replay: simulate by
        # rebuilding with identical data — the diff is empty and the
        # planner must still render nothing.
        report = _site().build_site(out, cache_dir=cache)
        assert report.pages_rendered == 0

    def test_corrupt_manifest_degrades_to_cold(self, tmp_path):
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        _site().build_site(out, cache_dir=cache)
        with open(os.path.join(cache, "manifest.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("{not json")
        report = _site().build_site(out, cache_dir=cache)
        assert report.reason == "cold"
        assert report.pages_rendered > 0

    def test_deleted_output_file_rerendered(self, tmp_path):
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        _site().build_site(out, cache_dir=cache)
        victim = os.path.join(out, "RootPage__.html")
        os.unlink(victim)
        report = _site().build_site(out, cache_dir=cache)
        assert os.path.exists(victim)
        assert {str(p) for p in report.written} == {"RootPage()"}


class TestParallelBuild:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_output_identical_to_serial(self, tmp_path, jobs):
        serial, parallel = str(tmp_path / "s"), str(tmp_path / "p")
        _site().build_site(serial, jobs=1)
        report = _site().build_site(parallel, jobs=jobs)
        assert report.jobs == jobs
        assert _read_tree(serial) == _read_tree(parallel)

    def test_parallel_with_cache(self, tmp_path):
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        _site().build_site(out, jobs=4, cache_dir=cache)
        report = _site().build_site(out, jobs=4, cache_dir=cache)
        assert report.pages_rendered == 0
        fresh = str(tmp_path / "fresh")
        _site().build_site(fresh)
        assert _read_tree(out) == _read_tree(fresh)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-2) >= 1


class TestRandomEditScripts:
    """Property-based differential check: for ANY additive edit
    script, the incremental rebuild's output directory is
    file-identical to a cold build of the same data.  Randomness is
    stdlib ``random`` with pinned seeds, so failures replay exactly.
    """

    STEPS = 10
    YEARS = list(range(1995, 2003))
    CATEGORIES = ["Semistructured Data", "Compilers", "Networking"]
    LABELS = ["note", "keyword", "doi"]

    def _apply_random_edit(self, rng, data, step):
        pubs = list(data.collection("Publications"))
        kind = rng.choice(["attribute", "year", "category", "new_pub"])
        if kind == "attribute":
            data.add_edge(rng.choice(pubs), rng.choice(self.LABELS),
                          Atom.string(f"v{rng.randrange(10_000)}"))
        elif kind == "year":
            data.add_edge(rng.choice(pubs), "year",
                          Atom.int(rng.choice(self.YEARS)))
        elif kind == "category":
            data.add_edge(rng.choice(pubs), "category",
                          Atom.string(rng.choice(self.CATEGORIES)))
        else:
            pub = Oid(f"edit-pub{step}")
            data.add_to_collection("Publications", pub)
            data.add_edge(pub, "title", Atom.string(f"Edit Paper {step}"))
            data.add_edge(pub, "year", Atom.int(rng.choice(self.YEARS)))
            data.add_edge(pub, "category",
                          Atom.string(rng.choice(self.CATEGORIES)))

    @pytest.mark.parametrize("seed", [0xBEEF, 0xCAFE])
    def test_incremental_equals_cold_after_every_edit(self, tmp_path,
                                                      seed):
        rng = random.Random(seed)
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        data = fig2_data()
        _site(data).build_site(out, cache_dir=cache)
        skipped_any = 0
        for step in range(self.STEPS):
            self._apply_random_edit(rng, data, step)
            report = _site(data).build_site(out, cache_dir=cache)
            assert report.reason == "incremental", \
                f"seed={seed:#x} step={step}: {report.reason}"
            skipped_any += report.pages_skipped
            fresh = str(tmp_path / f"fresh{step}")
            _site(data).build_site(fresh)
            assert _read_tree(out) == _read_tree(fresh), \
                f"seed={seed:#x} step={step}: trees diverged"
        # The cache earned its keep: across the script, at least some
        # pages were served from cache rather than re-rendered.
        assert skipped_any > 0

    def test_edit_script_with_parallel_jobs(self, tmp_path):
        """The same property holds when the incremental rebuild fans
        out across workers."""
        rng = random.Random(0xF00D)
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        data = fig2_data()
        _site(data).build_site(out, jobs=4, cache_dir=cache)
        for step in range(4):
            self._apply_random_edit(rng, data, step)
            _site(data).build_site(out, jobs=4, cache_dir=cache)
            fresh = str(tmp_path / f"fresh{step}")
            _site(data).build_site(fresh)
            assert _read_tree(out) == _read_tree(fresh)


class TestCachedGenerateFacade:
    def test_without_cache_is_full_build(self, tmp_path):
        site = _site()
        generator = HtmlGenerator(site.site_graph, site.templates)
        report = cached_generate(site.site_graph, generator,
                                 site.templates, str(tmp_path / "o"))
        assert report.reason == "full"
        assert report.pages_rendered == len(generator.pages())

    def test_cache_accepts_directory_string(self, tmp_path):
        site = _site()
        generator = HtmlGenerator(site.site_graph, site.templates)
        out = str(tmp_path / "o")
        cached_generate(site.site_graph, generator, site.templates,
                        out, cache=str(tmp_path / "c"))
        site2 = _site()
        generator2 = HtmlGenerator(site2.site_graph, site2.templates)
        report = cached_generate(site2.site_graph, generator2,
                                 site2.templates, out,
                                 cache=str(tmp_path / "c"))
        assert report.pages_rendered == 0

    def test_report_summary_line(self, tmp_path):
        out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
        _site().build_site(out, cache_dir=cache)
        report = _site().build_site(out, cache_dir=cache)
        assert report.summary().startswith("wrote 0 pages")
        assert "cached" in report.summary()

    def test_metrics_emitted(self, tmp_path):
        import repro.obs as obs
        with obs.recording() as rec:
            _site().build_site(str(tmp_path / "out"),
                               cache_dir=str(tmp_path / "cache"))
        metrics = rec.metrics
        assert metrics.counter("site.build.pages_rendered").value > 0
        assert metrics.gauge("site.build.jobs").value == 1
        def walk(span):
            yield span
            for child in span.children:
                yield from walk(child)
        spans = [s for root in rec.roots for s in walk(root)
                 if s.name == "site.build.page"]
        assert len(spans) == \
            metrics.counter("site.build.pages_rendered").value
