"""Synthetic workload generators: determinism, scale, irregularity."""

from repro.datagen import (
    SECTIONS,
    build_org_mediator,
    generate_bibtex,
    generate_news_graph,
    generate_news_pages,
    generate_org_sources,
)
from repro.graph import Oid
from repro.wrappers import BibTexWrapper


class TestBibtexGen:
    def test_deterministic(self):
        assert generate_bibtex(10, seed=1) == generate_bibtex(10, seed=1)
        assert generate_bibtex(10, seed=1) != generate_bibtex(10, seed=2)

    def test_requested_entry_count(self):
        graph = BibTexWrapper().wrap(generate_bibtex(25))
        assert len(graph.collection("Publications")) == 25

    def test_irregularities_present(self):
        graph = BibTexWrapper().wrap(generate_bibtex(40, seed=4))
        months = sum(1 for p in graph.collection("Publications")
                     if graph.get_one(p, "month") is not None)
        assert 0 < months < 40  # some entries lack a month
        journals = sum(1 for p in graph.collection("Publications")
                       if graph.get_one(p, "journal") is not None)
        booktitles = sum(1 for p in graph.collection("Publications")
                         if graph.get_one(p, "booktitle") is not None)
        assert journals and booktitles  # both venue kinds occur

    def test_year_range(self):
        graph = BibTexWrapper().wrap(
            generate_bibtex(30, year_range=(1991, 1993)))
        years = {graph.get_one(p, "year").value
                 for p in graph.collection("Publications")}
        assert years <= {1991, 1992, 1993}


class TestNewsGen:
    def test_deterministic_pages(self):
        assert generate_news_pages(5, seed=2) == \
            generate_news_pages(5, seed=2)

    def test_article_count_and_metadata(self):
        graph = generate_news_graph(30)
        articles = graph.collection("Articles")
        assert len(articles) == 30
        sections = {str(graph.get_one(a, "meta-section"))
                    for a in articles}
        assert sections <= set(SECTIONS)
        assert len(sections) > 1

    def test_cross_links_resolve(self):
        graph = generate_news_graph(30)
        internal_links = [
            e for e in graph.edges()
            if e.label == "link" and isinstance(e.target, Oid)]
        assert internal_links


class TestOrgGen:
    def test_five_sources(self):
        raw = generate_org_sources(people=20, projects=4, publications=6)
        assert set(raw) == {"people", "orgs", "projects", "pubs",
                            "homepages"}
        assert isinstance(raw["homepages"], dict)

    def test_mediated_scale(self):
        data = build_org_mediator(people=20, projects=4,
                                  publications=6).warehouse()
        assert len(data.collection("Persons")) == 20
        assert len(data.collection("Projects")) == 4
        assert len(data.collection("Publications")) == 6
        assert data.collection("HandPages")

    def test_project_irregularities(self):
        data = build_org_mediator(people=40, projects=16,
                                  publications=5).warehouse()
        projects = data.collection("Projects")
        with_synopsis = sum(1 for p in projects
                            if data.get_one(p, "synopsis") is not None)
        assert 0 < with_synopsis < len(projects)
        with_sponsor = sum(1 for p in projects
                           if data.get_one(p, "sponsor") is not None)
        assert 0 < with_sponsor < len(projects)

    def test_determinism_across_mediators(self):
        one = build_org_mediator(people=15, projects=3,
                                 publications=4, seed=9).warehouse()
        two = build_org_mediator(people=15, projects=3,
                                 publications=4, seed=9).warehouse()
        assert set(one.edges()) == set(two.edges())
