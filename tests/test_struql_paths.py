"""Regular path expressions: compilation and product-graph evaluation."""

import pytest

from repro.graph import Atom, Graph, Oid
from repro.struql import (
    AnyLabel,
    LabelEquals,
    LabelPredicate,
    PathEvaluator,
    RAlt,
    RConcat,
    RLabel,
    RStar,
    compile_path,
    default_registry,
)
from repro.errors import UnknownPredicateError


def label(name: str) -> RLabel:
    return RLabel(LabelEquals(name))


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def diamond() -> Graph:
    r"""a -x-> b -y-> d ; a -x-> c -z-> d ; d -w-> atom."""
    graph = Graph("diamond")
    a, b, c, d = Oid("a"), Oid("b"), Oid("c"), Oid("d")
    graph.add_edge(a, "x", b)
    graph.add_edge(a, "x", c)
    graph.add_edge(b, "y", d)
    graph.add_edge(c, "z", d)
    graph.add_edge(d, "w", Atom.string("leaf"))
    return graph


class TestCompilation:
    def test_single_label(self):
        nfa = compile_path(label("a"))
        assert not nfa.accepts_empty
        assert nfa.state_count == 2

    def test_star_accepts_empty(self):
        assert compile_path(RStar(label("a"))).accepts_empty

    def test_concat_not_empty(self):
        nfa = compile_path(RConcat((label("a"), label("b"))))
        assert not nfa.accepts_empty

    def test_alt_empty_iff_an_option_is(self):
        nfa = compile_path(RAlt((label("a"), RStar(label("b")))))
        assert nfa.accepts_empty

    def test_reversed_language(self):
        nfa = compile_path(RConcat((label("a"), label("b"))))
        rev = nfa.reversed()
        assert rev.start == nfa.accept and rev.accept == nfa.start


class TestEvaluation:
    def eval(self, expr, graph, start, registry):
        return PathEvaluator(expr, registry).forward(graph, Oid(start))

    def test_single_step(self, diamond, registry):
        hits = self.eval(label("x"), diamond, "a", registry)
        assert hits == {Oid("b"), Oid("c")}

    def test_concat(self, diamond, registry):
        hits = self.eval(RConcat((label("x"), label("y"))), diamond, "a",
                         registry)
        assert hits == {Oid("d")}

    def test_alternation(self, diamond, registry):
        expr = RConcat((label("x"), RAlt((label("y"), label("z")))))
        assert self.eval(expr, diamond, "a", registry) == {Oid("d")}

    def test_any_label(self, diamond, registry):
        assert self.eval(RLabel(AnyLabel()), diamond, "a", registry) == \
            {Oid("b"), Oid("c")}

    def test_star_includes_start(self, diamond, registry):
        hits = self.eval(RStar(RLabel(AnyLabel())), diamond, "a", registry)
        assert Oid("a") in hits
        assert Atom.string("leaf") in hits  # atoms reachable too

    def test_star_on_cycle_terminates(self, registry):
        graph = Graph("cycle")
        graph.add_edge(Oid("a"), "n", Oid("b"))
        graph.add_edge(Oid("b"), "n", Oid("a"))
        hits = PathEvaluator(RStar(label("n")), registry).forward(
            graph, Oid("a"))
        assert hits == {Oid("a"), Oid("b")}

    def test_backward(self, diamond, registry):
        evaluator = PathEvaluator(RConcat((label("x"), label("y"))),
                                  registry)
        assert evaluator.backward(diamond, Oid("d")) == {Oid("a")}

    def test_backward_from_atom(self, diamond, registry):
        evaluator = PathEvaluator(label("w"), registry)
        assert evaluator.backward(diamond, Atom.string("leaf")) == \
            {Oid("d")}

    def test_pairs(self, diamond, registry):
        pairs = PathEvaluator(label("x"), registry).pairs(diamond)
        assert pairs == {(Oid("a"), Oid("b")), (Oid("a"), Oid("c"))}

    def test_connects(self, diamond, registry):
        evaluator = PathEvaluator(RStar(RLabel(AnyLabel())), registry)
        assert evaluator.connects(diamond, Oid("a"), Oid("d"))
        assert not evaluator.connects(diamond, Oid("d"), Oid("a"))

    def test_label_predicate(self, diamond, registry):
        registry = registry.copy()
        registry.register("isXish", lambda lbl: str(lbl) in ("x", "y"))
        expr = RStar(RLabel(LabelPredicate("isXish")))
        hits = PathEvaluator(expr, registry).forward(diamond, Oid("a"))
        assert hits == {Oid("a"), Oid("b"), Oid("c"), Oid("d")}

    def test_unknown_predicate_raises(self, diamond, registry):
        evaluator = PathEvaluator(RLabel(LabelPredicate("nope")), registry)
        with pytest.raises(UnknownPredicateError):
            evaluator.forward(diamond, Oid("a"))

    def test_empty_path_on_atom_origin(self, diamond, registry):
        evaluator = PathEvaluator(RStar(label("x")), registry)
        hits = evaluator.forward(diamond, Atom.string("leaf"))
        assert hits == {Atom.string("leaf")}

    def test_nested_star(self, registry):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "s", Oid("b"))
        graph.add_edge(Oid("b"), "t", Oid("c"))
        expr = RStar(RAlt((label("s"), label("t"))))
        hits = PathEvaluator(expr, registry).forward(graph, Oid("a"))
        assert hits == {Oid("a"), Oid("b"), Oid("c")}

    def test_memoized_label_tests_shared(self, diamond, registry):
        evaluator = PathEvaluator(label("x"), registry)
        first = evaluator.forward(diamond, Oid("a"))
        second = evaluator.forward(diamond, Oid("a"))
        assert first == second
