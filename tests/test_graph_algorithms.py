"""Traversal algorithms over the data model."""

from repro.graph import (
    Atom,
    Graph,
    Oid,
    graph_diameter,
    iter_paths,
    reachable,
    reachable_many,
    shortest_path,
    transitive_closure,
    unreachable_from,
    weakly_connected_components,
)


def chain(*names: str) -> Graph:
    graph = Graph("chain")
    for left, right in zip(names, names[1:]):
        graph.add_edge(Oid(left), "next", Oid(right))
    return graph


class TestReachable:
    def test_includes_start_by_default(self, tiny_graph):
        hits = reachable(tiny_graph, Oid("root"))
        assert Oid("root") in hits

    def test_excludes_start_when_asked(self, tiny_graph):
        hits = reachable(tiny_graph, Oid("root"), include_start=False)
        assert Oid("root") not in hits
        assert Oid("a") in hits and Oid("img") in hits

    def test_atoms_optional(self, tiny_graph):
        without = reachable(tiny_graph, Oid("root"))
        with_atoms = reachable(tiny_graph, Oid("root"), include_atoms=True)
        assert Atom.string("hello") not in without
        assert Atom.string("hello") in with_atoms

    def test_label_filter(self, tiny_graph):
        only_sec = reachable(tiny_graph, Oid("root"),
                             label_ok=lambda lbl: lbl == "sec")
        assert Oid("a") in only_sec and Oid("img") not in only_sec

    def test_cycle_terminates(self):
        graph = chain("a", "b", "c")
        graph.add_edge(Oid("c"), "next", Oid("a"))
        hits = reachable(graph, Oid("a"))
        assert hits == {Oid("a"), Oid("b"), Oid("c")}

    def test_reachable_many_union(self, tiny_graph):
        hits = reachable_many(tiny_graph, [Oid("a"), Oid("b")])
        assert Oid("img") in hits and Oid("root") not in hits


class TestUnreachable:
    def test_all_covered(self, tiny_graph):
        assert unreachable_from(tiny_graph, [Oid("root")]) == set()

    def test_orphan_detected(self, tiny_graph):
        tiny_graph.add_edge(Oid("island"), "l", Atom.int(1))
        missing = unreachable_from(tiny_graph, [Oid("root")])
        assert missing == {Oid("island")}


class TestShortestPath:
    def test_trivial(self, tiny_graph):
        assert shortest_path(tiny_graph, Oid("root"), Oid("root")) == []

    def test_direct(self, tiny_graph):
        path = shortest_path(tiny_graph, Oid("root"), Oid("a"))
        assert [e.label for e in path] == ["sec"]

    def test_two_hops_is_minimal(self, tiny_graph):
        path = shortest_path(tiny_graph, Oid("root"), Oid("img"))
        assert [e.label for e in path] == ["sec", "pic"]

    def test_to_atom(self, tiny_graph):
        path = shortest_path(tiny_graph, Oid("root"), Atom.string("hello"))
        assert path is not None and path[-1].label == "txt"

    def test_unreachable_returns_none(self, tiny_graph):
        assert shortest_path(tiny_graph, Oid("img"), Oid("root")) is None


class TestClosure:
    def test_dag_closure(self):
        graph = chain("a", "b", "c")
        closure = transitive_closure(graph)
        assert closure[Oid("a")] == {Oid("b"), Oid("c")}
        assert closure[Oid("c")] == set()

    def test_cycle_includes_self(self):
        graph = chain("a", "b")
        graph.add_edge(Oid("b"), "next", Oid("a"))
        closure = transitive_closure(graph)
        assert Oid("a") in closure[Oid("a")]

    def test_self_loop(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "self", Oid("a"))
        assert Oid("a") in transitive_closure(graph)[Oid("a")]


class TestComponents:
    def test_single_component(self, tiny_graph):
        assert len(weakly_connected_components(tiny_graph)) == 1

    def test_two_components(self, tiny_graph):
        tiny_graph.add_edge(Oid("x"), "l", Oid("y"))
        assert len(weakly_connected_components(tiny_graph)) == 2

    def test_shared_atom_joins(self):
        graph = Graph("g")
        shared = Atom.string("shared")
        graph.add_edge(Oid("a"), "l", shared)
        graph.add_edge(Oid("b"), "l", shared)
        assert len(weakly_connected_components(graph)) == 1


class TestIterPaths:
    def test_respects_max_length(self, tiny_graph):
        paths = list(iter_paths(tiny_graph, Oid("root"), 1))
        assert all(len(p) == 1 for p in paths)
        deeper = list(iter_paths(tiny_graph, Oid("root"), 3))
        assert any(len(p) == 3 for p in deeper)

    def test_no_revisits_on_cycles(self):
        graph = chain("a", "b")
        graph.add_edge(Oid("b"), "next", Oid("a"))
        paths = list(iter_paths(graph, Oid("a"), 10))
        assert len(paths) == 2  # a->b and a->b->a, then stop


class TestDiameter:
    def test_chain_diameter(self):
        assert graph_diameter(chain("a", "b", "c", "d")) == 3

    def test_empty_graph(self):
        assert graph_diameter(Graph("g")) == 0
