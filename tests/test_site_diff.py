"""Incremental site updates: graph diff and selective regeneration."""

import os

import pytest

from repro.graph import Atom, Graph, Oid
from repro.site import diff_graphs, refresh_site
from repro.sites.homepage import FIG3_QUERY, fig7_templates
from repro.struql import QueryEngine
from repro.templates import HtmlGenerator


@pytest.fixture
def built(fig2_graph, tmp_path):
    site = QueryEngine().evaluate(FIG3_QUERY, fig2_graph).output
    generator = HtmlGenerator(site, fig7_templates())
    generator.generate_site(str(tmp_path))
    return fig2_graph, site, tmp_path


class TestDiff:
    def test_identical_graphs_empty_diff(self, fig4_site):
        diff = diff_graphs(fig4_site, fig4_site.copy())
        assert diff.empty
        assert "+0/-0" in diff.summary()

    def test_added_and_removed_nodes(self, tiny_graph):
        new = tiny_graph.copy()
        new.add_edge(Oid("extra"), "l", Atom.int(1))
        diff = diff_graphs(tiny_graph, new)
        assert diff.added_nodes == {Oid("extra")}
        assert not diff.removed_nodes
        reverse = diff_graphs(new, tiny_graph)
        assert reverse.removed_nodes == {Oid("extra")}

    def test_edge_deltas(self, tiny_graph):
        new = tiny_graph.copy()
        new.add_edge(Oid("root"), "sec", Oid("a"))  # duplicate: no-op
        new.add_edge(Oid("b"), "alt", Oid("root"))
        diff = diff_graphs(tiny_graph, new)
        assert len(diff.added_edges) == 1
        assert next(iter(diff.added_edges)).label == "alt"

    def test_collection_changes(self, tiny_graph):
        new = tiny_graph.copy()
        new.add_to_collection("Root", Oid("a"))
        diff = diff_graphs(tiny_graph, new)
        added, removed = diff.collection_changes["Root"]
        assert added == {Oid("a")} and removed == set()

    def test_touched_sources(self, tiny_graph):
        new = tiny_graph.copy()
        new.add_edge(Oid("a"), "txt", Atom.string("more"))
        diff = diff_graphs(tiny_graph, new)
        assert diff.touched_sources() == {Oid("a")}


class TestDirtyPages:
    def test_dirty_closes_backwards_over_embedding(self, fig2_graph,
                                                   fig4_site):
        """Adding an attribute to a presentation dirties the pages that
        embed it (year/category/abstracts), not unrelated pages."""
        new_site = fig4_site.copy()
        pres = Oid.skolem("PaperPresentation", (Oid("pub1"),))
        new_site.add_edge(pres, "note", Atom.string("updated"))
        diff = diff_graphs(fig4_site, new_site)
        generator = HtmlGenerator(new_site, fig7_templates())
        dirty = diff.dirty_pages(new_site, generator)
        names = {n.skolem_fn for n in dirty}
        assert "YearPage" in names          # embeds the presentation
        assert "RootPage" in names          # links to the year page
        year98 = Oid.skolem("YearPage", (Atom.int(1998),))
        assert year98 not in dirty          # pub2's year unaffected


class TestRefreshSite:
    def test_no_change_rewrites_nothing(self, built):
        data, old_site, out = built
        result = refresh_site(FIG3_QUERY, data, old_site,
                              fig7_templates(), str(out))
        assert result.diff.empty
        assert result.pages_rewritten == 0
        assert result.removed_files == []

    def test_new_publication_touches_proportional_pages(self, built):
        data, old_site, out = built
        before = len(os.listdir(out))
        pub3 = Oid("pub3")
        data.add_to_collection("Publications", pub3)
        data.add_edge(pub3, "title", Atom.string("Third"))
        data.add_edge(pub3, "year", Atom.int(1999))
        data.add_edge(pub3, "abstract", Atom.file("a/3.txt"))
        result = refresh_site(FIG3_QUERY, data, old_site,
                              fig7_templates(), str(out))
        assert not result.diff.empty
        # New year page + new abstract page + updated root/abstracts.
        written_fns = {p.skolem_fn for p in result.regenerated}
        assert "YearPage" in written_fns
        assert "RootPage" in written_fns
        # The untouched 1997/1998 year pages were NOT rewritten...
        year97 = Oid.skolem("YearPage", (Atom.int(1997),))
        assert year97 not in result.regenerated
        # ...and the new files exist on disk.
        assert len(os.listdir(out)) == before + 2  # year1999 + abstract

    def test_removed_publication_deletes_files(self, built, fig2_graph):
        data, old_site, out = built
        # Rebuild data without pub2 (remove by filtering into new graph).
        smaller = data.subgraph(lambda oid: oid.name != "pub2",
                                name="BIBTEX")
        result = refresh_site(FIG3_QUERY, smaller, old_site,
                              fig7_templates(), str(out))
        assert result.removed_files  # 1998 year page, pub2 pages...
        for path in result.removed_files:
            assert not os.path.exists(path)

    def test_rewritten_content_is_correct(self, built):
        data, old_site, out = built
        pub1 = Oid("pub1")
        data.add_edge(pub1, "category", Atom.string("New Topic"))
        result = refresh_site(FIG3_QUERY, data, old_site,
                              fig7_templates(), str(out))
        root_path = os.path.join(
            str(out), "RootPage__.html")
        html = open(root_path).read()
        assert "New Topic" in html
