"""The labeled directed graph model: nodes, edges, collections, databases."""

import pytest

from repro.errors import (
    GraphError,
    ImmutableNodeError,
    UnknownCollectionError,
    UnknownObjectError,
)
from repro.graph import Atom, Database, Edge, Graph, Oid, ensure_object


class TestOid:
    def test_equality_by_name(self):
        assert Oid("a") == Oid("a")
        assert Oid("a") != Oid("b")

    def test_hashable(self):
        assert len({Oid("a"), Oid("a"), Oid("b")}) == 2

    def test_skolem_identity(self):
        one = Oid.skolem("F", (Atom.int(1),))
        two = Oid.skolem("F", (Atom.int(1),))
        assert one == two and hash(one) == hash(two)

    def test_skolem_distinct_args(self):
        assert Oid.skolem("F", (Atom.int(1),)) != Oid.skolem(
            "F", (Atom.int(2),))

    def test_skolem_distinct_fn(self):
        assert Oid.skolem("F", ()) != Oid.skolem("G", ())

    def test_skolem_coerced_args_unify(self):
        # 1997 the int and "1997" the string mint the same page.
        assert Oid.skolem("Year", (Atom.int(1997),)) == Oid.skolem(
            "Year", (Atom.string("1997"),))

    def test_skolem_differs_from_plain(self):
        assert Oid.skolem("F", ()) != Oid("F()")

    def test_skolem_name_readable(self):
        oid = Oid.skolem("YearPage", (Atom.int(1997),))
        assert str(oid) == "YearPage(1997)"
        assert oid.is_skolem

    def test_skolem_nested_oid_arg(self):
        inner = Oid("pub1")
        assert str(Oid.skolem("Page", (inner,))) == "Page(pub1)"


class TestGraphBasics:
    def test_add_node_idempotent(self):
        graph = Graph("g")
        graph.add_node(Oid("a"))
        graph.add_node(Oid("a"))
        assert graph.node_count == 1

    def test_add_edge_creates_endpoints(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "l", Oid("b"))
        assert graph.has_node(Oid("a")) and graph.has_node(Oid("b"))

    def test_edge_set_semantics(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "l", Oid("b"))
        graph.add_edge(Oid("a"), "l", Oid("b"))
        assert graph.edge_count == 1

    def test_multivalued_attribute(self):
        graph = Graph("g")
        graph.add_edge(Oid("p"), "author", Atom.string("A"))
        graph.add_edge(Oid("p"), "author", Atom.string("B"))
        assert [str(v) for v in graph.get(Oid("p"), "author")] == ["A", "B"]

    def test_get_one_default(self):
        graph = Graph("g")
        graph.add_node(Oid("a"))
        assert graph.get_one(Oid("a"), "missing") is None
        assert graph.get_one(Oid("a"), "missing", Atom.int(0)) == Atom.int(0)

    def test_bad_edge_endpoints(self):
        graph = Graph("g")
        with pytest.raises(GraphError):
            graph.add_edge("not-an-oid", "l", Oid("b"))
        with pytest.raises(GraphError):
            graph.add_edge(Oid("a"), "l", object())
        with pytest.raises(GraphError):
            graph.add_edge(Oid("a"), 3, Oid("b"))

    def test_in_edges(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "l", Oid("c"))
        graph.add_edge(Oid("b"), "m", Oid("c"))
        assert {e.source for e in graph.in_edges(Oid("c"))} == \
            {Oid("a"), Oid("b")}

    def test_in_edges_atom_target_with_coercion(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "year", Atom.int(1997))
        hits = graph.in_edges(Atom.string("1997"))
        assert [e.source for e in hits] == [Oid("a")]

    def test_labels_of(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "x", Atom.int(1))
        graph.add_edge(Oid("a"), "y", Atom.int(2))
        graph.add_edge(Oid("a"), "x", Atom.int(3))
        assert graph.labels_of(Oid("a")) == ["x", "y"]

    def test_labels_schema_view(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "beta", Atom.int(1))
        graph.add_edge(Oid("a"), "alpha", Atom.int(2))
        assert graph.labels() == ["alpha", "beta"]

    def test_contains(self):
        graph = Graph("g")
        edge = graph.add_edge(Oid("a"), "l", Oid("b"))
        assert Oid("a") in graph
        assert edge in graph
        assert Oid("zz") not in graph
        assert "random" not in graph

    def test_len_and_repr(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "l", Oid("b"))
        assert len(graph) == 2
        assert "g" in repr(graph)

    def test_atoms_iteration_distinct(self):
        graph = Graph("g")
        shared = Atom.string("s")
        graph.add_edge(Oid("a"), "l", shared)
        graph.add_edge(Oid("b"), "l", shared)
        assert len(list(graph.atoms())) == 1


class TestCollections:
    def test_membership(self):
        graph = Graph("g")
        graph.add_to_collection("C", Oid("a"))
        assert graph.in_collection("C", Oid("a"))
        assert not graph.in_collection("C", Oid("b"))

    def test_member_added_as_node(self):
        graph = Graph("g")
        graph.add_to_collection("C", Oid("a"))
        assert graph.has_node(Oid("a"))

    def test_atoms_can_be_members(self):
        graph = Graph("g")
        graph.add_to_collection("Years", Atom.int(1997))
        assert graph.in_collection("Years", Atom.int(1997))

    def test_multiple_collections(self):
        graph = Graph("g")
        graph.add_to_collection("A", Oid("x"))
        graph.add_to_collection("B", Oid("x"))
        assert graph.collections_of(Oid("x")) == ["A", "B"]

    def test_unknown_collection_raises(self):
        with pytest.raises(UnknownCollectionError):
            Graph("g").collection("nope")

    def test_declare_empty(self):
        graph = Graph("g")
        graph.declare_collection("Empty")
        assert graph.collection("Empty") == []
        assert graph.has_collection("Empty")

    def test_insertion_order_preserved(self):
        graph = Graph("g")
        for name in ("c", "a", "b"):
            graph.add_to_collection("C", Oid(name))
        assert [str(m) for m in graph.collection("C")] == ["c", "a", "b"]


class TestImmutability:
    def test_frozen_node_rejects_edges(self):
        graph = Graph("g")
        graph.add_node(Oid("old"))
        graph.freeze_existing()
        with pytest.raises(ImmutableNodeError):
            graph.add_edge(Oid("old"), "l", Oid("new"))

    def test_new_nodes_stay_mutable(self):
        graph = Graph("g")
        graph.add_node(Oid("old"))
        graph.freeze_existing()
        graph.add_edge(Oid("new"), "l", Oid("old"))  # into old is fine
        assert graph.edge_count == 1
        assert graph.is_frozen(Oid("old"))
        assert not graph.is_frozen(Oid("new"))


class TestBulkOps:
    def test_import_graph_shares_objects(self, tiny_graph):
        other = Graph("copy")
        other.import_graph(tiny_graph)
        assert other.node_count == tiny_graph.node_count
        assert other.edge_count == tiny_graph.edge_count
        assert other.in_collection("Root", Oid("root"))

    def test_copy_independent(self, tiny_graph):
        clone = tiny_graph.copy("clone")
        clone.add_edge(Oid("zzz"), "l", Oid("root"))
        assert not tiny_graph.has_node(Oid("zzz"))

    def test_subgraph_keeps_induced_edges(self, tiny_graph):
        sub = tiny_graph.subgraph(lambda oid: oid.name != "img")
        assert not sub.has_node(Oid("img"))
        assert sub.has_edge(Oid("root"), "sec", Oid("a"))
        assert not any(e.label == "pic" for e in sub.edges())

    def test_subgraph_keeps_atom_edges(self, tiny_graph):
        sub = tiny_graph.subgraph(lambda oid: True)
        assert sub.edge_count == tiny_graph.edge_count


class TestDatabase:
    def test_named_graphs(self):
        db = Database("db")
        db.new_graph("data")
        assert db.has_graph("data")
        assert db.graph_names() == ["data"]
        assert "data" in db and len(db) == 1

    def test_unnamed_graph_rejected(self):
        with pytest.raises(GraphError):
            Database().add_graph(Graph(""))

    def test_unknown_graph_raises(self):
        with pytest.raises(UnknownObjectError):
            Database().graph("missing")

    def test_shared_objects_across_graphs(self):
        db = Database()
        one, two = db.new_graph("one"), db.new_graph("two")
        shared = Oid("shared")
        one.add_node(shared)
        two.add_edge(Oid("other"), "ref", shared)
        assert one.has_node(shared) and two.has_node(shared)

    def test_remove_graph(self):
        db = Database()
        db.new_graph("g")
        db.remove_graph("g")
        db.remove_graph("g")  # idempotent
        assert not db.has_graph("g")


class TestEnsureObject:
    def test_passthrough(self):
        oid = Oid("a")
        assert ensure_object(oid) is oid

    def test_wraps_python(self):
        assert ensure_object(3) == Atom.int(3)
        assert ensure_object("s") == Atom.string("s")
