"""GraphViz export of concrete graphs."""

from repro.graph import Atom, Graph, Oid, graph_to_dot


class TestDot:
    def test_basic_shape(self, tiny_graph):
        dot = graph_to_dot(tiny_graph)
        assert dot.startswith("digraph")
        assert '"root" -> "a" [label="sec"];' in dot
        assert 'collection: Root' in dot

    def test_atoms_as_boxes(self, tiny_graph):
        dot = graph_to_dot(tiny_graph)
        assert 'shape=box, label="hello"' in dot

    def test_atoms_suppressed(self, tiny_graph):
        dot = graph_to_dot(tiny_graph, include_atoms=False)
        assert "hello" not in dot

    def test_shared_atoms_deduplicated(self):
        graph = Graph("g")
        shared = Atom.string("v")
        graph.add_edge(Oid("a"), "l", shared)
        graph.add_edge(Oid("b"), "l", shared)
        dot = graph_to_dot(graph)
        assert dot.count('label="v"') == 1

    def test_max_nodes_truncates(self, fig4_site):
        dot = graph_to_dot(fig4_site, max_nodes=3)
        assert '"..."' in dot

    def test_keep_filter(self, tiny_graph):
        dot = graph_to_dot(tiny_graph, keep=lambda n: n.name != "img")
        assert '"img"' not in dot
        assert '"a"' in dot

    def test_quoting(self):
        graph = Graph("g")
        graph.add_edge(Oid('we "quote"'), "l", Atom.string('ha "ha"'))
        dot = graph_to_dot(graph)
        assert '\\"quote\\"' in dot

    def test_long_atom_labels_truncated(self):
        graph = Graph("g")
        graph.add_edge(Oid("a"), "l", Atom.string("x" * 100))
        dot = graph_to_dot(graph)
        assert "..." in dot
