"""The observability layer: spans, metrics, exporters, integration."""

import json
import threading
import time

import pytest

from repro import obs
from repro.ddl import parse_ddl
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_RECORDER, Span, TimedResult
from repro.sites.homepage import FIG2_DDL, FIG3_QUERY
from repro.struql.evaluator import QueryEngine


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test starts and ends with the global no-op recorder."""
    obs.disable()
    yield
    obs.disable()


class TestSpans:
    def test_nesting_and_ordering(self):
        with obs.recording() as rec:
            with rec.span("outer") as outer:
                with rec.span("first"):
                    pass
                with rec.span("second") as second:
                    with rec.span("inner"):
                        pass
                second.set(checked=True)
        assert [r.name for r in rec.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["first", "second"]
        assert [c.name for c in second.children] == ["inner"]
        assert second.attributes["checked"] is True
        assert [s.name for s in outer.walk()] == \
            ["outer", "first", "second", "inner"]

    def test_durations_nest(self):
        with obs.recording() as rec:
            with rec.span("outer") as outer:
                with rec.span("inner") as inner:
                    time.sleep(0.002)
        assert outer.seconds >= inner.seconds > 0

    def test_find(self):
        with obs.recording() as rec:
            with rec.span("a"):
                with rec.span("b", tag=1):
                    pass
        found = rec.roots[0].find("b")
        assert found is not None and found.attributes["tag"] == 1
        assert rec.roots[0].find("zzz") is None

    def test_exception_still_closes_span(self):
        with obs.recording() as rec:
            with pytest.raises(ValueError):
                with rec.span("boom"):
                    raise ValueError("x")
        span = rec.roots[0]
        assert span.end is not None
        assert rec.current() is None

    def test_threads_get_separate_roots(self):
        with obs.recording() as rec:
            def work(label):
                with rec.span(label):
                    with rec.span(f"{label}.child"):
                        pass
            threads = [threading.Thread(target=work, args=(f"t{i}",))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sorted(r.name for r in rec.roots) == \
            ["t0", "t1", "t2", "t3"]
        assert all(len(r.children) == 1 for r in rec.roots)

    def test_timed_is_real_even_when_disabled(self):
        with obs.timed("work", kind="test") as span:
            time.sleep(0.001)
        assert span.seconds >= 0.001
        assert span.attributes == {"kind": "test"}
        # ...but nothing was collected globally.
        assert obs.get_recorder() is NULL_RECORDER

    def test_timed_attaches_when_recording(self):
        with obs.recording() as rec:
            with obs.timed("work") as span:
                pass
        assert rec.roots == [span]

    def test_traced_decorator(self):
        @obs.traced("my.fn")
        def fn(x):
            return x * 2

        assert fn(3) == 6  # disabled: plain call
        with obs.recording() as rec:
            assert fn(4) == 8
        assert rec.roots[0].name == "my.fn"

    def test_noop_span_is_shared_and_inert(self):
        with obs.span("anything", a=1) as span:
            span.set(b=2)
        assert span.attributes == {}
        assert span.seconds == 0.0

    def test_recording_restores_previous(self):
        outer = obs.enable()
        with obs.recording() as inner:
            assert obs.get_recorder() is inner
        assert obs.get_recorder() is outer

    def test_clear(self):
        with obs.recording() as rec:
            with rec.span("x"):
                pass
            rec.metrics.counter("c").inc()
            rec.clear()
            assert rec.roots == []
            assert rec.metrics.as_dict()["counters"] == {}


class TestTimedResult:
    def test_seconds_from_span(self):
        span = Span("s", start=10.0, end=10.5)
        assert TimedResult(span=span).seconds == 0.5

    def test_seconds_without_span(self):
        assert TimedResult().seconds == 0.0


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        registry.gauge("depth").set(7)
        data = registry.as_dict()
        assert data["counters"]["hits"] == 5
        assert data["gauges"]["depth"] == 7

    def test_counter_thread_safety(self):
        counter = MetricsRegistry().counter("n")

        def bump():
            for _ in range(1000):
                counter.inc()
        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_histogram_percentiles_uniform(self):
        # 1..1000 ms uniform: p50 ~ 0.5 s, p90 ~ 0.9 s, p99 ~ 0.99 s.
        histogram = Histogram("lat")
        for i in range(1, 1001):
            histogram.observe(i / 1000.0)
        assert histogram.count == 1000
        assert abs(histogram.percentile(0.50) - 0.5) < 0.15
        assert abs(histogram.percentile(0.90) - 0.9) < 0.2
        assert histogram.percentile(0.99) <= histogram.max == 1.0
        assert histogram.percentile(0.50) < histogram.percentile(0.90) \
            <= histogram.percentile(0.99)
        assert abs(histogram.mean - 0.5005) < 1e-9

    def test_histogram_constant_distribution(self):
        histogram = Histogram("lat")
        for _ in range(100):
            histogram.observe(0.003)
        # All mass in one bucket, clamped to observed min/max.
        assert histogram.percentile(0.5) == pytest.approx(0.003, abs=1e-3)
        assert histogram.min == histogram.max == 0.003

    def test_histogram_overflow_bucket(self):
        histogram = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 50.0, 100.0):
            histogram.observe(value)
        assert histogram.percentile(1.0) == 100.0
        assert histogram.max == 100.0

    def test_histogram_empty(self):
        histogram = Histogram("lat")
        assert histogram.percentile(0.99) == 0.0
        summary = histogram.summary()
        assert summary["count"] == 0 and summary["min"] == 0.0

    def test_histogram_bounded_memory(self):
        histogram = Histogram("lat")
        for i in range(10000):
            histogram.observe(i * 0.001)
        assert len(histogram.bucket_counts) == \
            len(histogram.bounds) + 1

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(1.5)
        with pytest.raises(ValueError):
            Histogram("lat").percentile(-0.1)

    def test_histogram_single_observation(self):
        histogram = Histogram("lat")
        histogram.observe(0.007)
        # Every quantile of a single observation is that observation.
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.percentile(q) == \
                pytest.approx(0.007, abs=1e-9)

    def test_histogram_q0_q1_clamp_to_min_max(self):
        histogram = Histogram("lat")
        for value in (0.002, 0.04, 0.3):
            histogram.observe(value)
        # Interpolation cannot stray outside the observed range.
        assert histogram.percentile(0.0) == histogram.min == 0.002
        assert histogram.percentile(1.0) == histogram.max == 0.3

    def test_histogram_overflow_single_observation(self):
        histogram = Histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(42.0)
        # Past the last bound, the overflow bucket answers the true
        # max (tracked exactly) rather than an interpolated bound.
        assert histogram.percentile(0.5) == 42.0
        assert histogram.percentile(1.0) == 42.0


class TestExport:
    def _sample_recorder(self):
        recorder = obs.TraceRecorder()
        with recorder.span("root", stage="build"):
            with recorder.span("child", n=2):
                pass
        recorder.metrics.counter("hits").inc(3)
        recorder.metrics.gauge("size").set(9)
        recorder.metrics.histogram("lat").observe(0.25)
        return recorder

    def test_json_round_trip(self):
        recorder = self._sample_recorder()
        text = obs.to_json(recorder)
        spans, metrics, _events = obs.from_json(text)
        assert len(spans) == 1
        root = spans[0]
        assert root.name == "root"
        assert root.attributes == {"stage": "build"}
        assert [c.name for c in root.children] == ["child"]
        assert root.children[0].attributes == {"n": 2}
        original = recorder.roots[0]
        assert root.seconds == pytest.approx(original.seconds)
        assert metrics["counters"]["hits"] == 3
        assert metrics["gauges"]["size"] == 9
        assert metrics["histograms"]["lat"]["count"] == 1

    def test_json_is_valid_and_safe(self):
        recorder = obs.TraceRecorder()
        with recorder.span("r", oid=object()):
            pass
        parsed = json.loads(obs.to_json(recorder))
        assert isinstance(parsed["spans"][0]["attributes"]["oid"], str)

    def test_export_max_depth_prunes(self):
        recorder = obs.TraceRecorder()
        with recorder.span("a"):
            with recorder.span("b"):
                with recorder.span("c"):
                    pass
                with recorder.span("d"):
                    pass
        document = obs.export_state(recorder, max_depth=2)
        root = document["spans"][0]
        assert [c["name"] for c in root["children"]] == ["b"]
        assert root["children"][0]["children"] == []
        assert root["children"][0]["pruned"] == 2
        full = obs.export_state(recorder)
        b = full["spans"][0]["children"][0]
        assert [c["name"] for c in b["children"]] == ["c", "d"]
        assert "pruned" not in b

    def test_render_tree(self):
        recorder = self._sample_recorder()
        tree = obs.render_tree(recorder)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "stage=build" in lines[0]

    def test_render_tree_empty(self):
        assert "no spans" in obs.render_tree([])

    def test_render_metrics(self):
        recorder = self._sample_recorder()
        text = obs.render_metrics(recorder.metrics)
        assert "hits" in text and "p50" in text

    def test_write_json(self, tmp_path):
        recorder = self._sample_recorder()
        path = tmp_path / "obs.json"
        obs.write_json(recorder, str(path))
        spans, _, _ = obs.from_json(path.read_text())
        assert spans[0].name == "root"


class TestPipelineIntegration:
    def test_query_engine_emits_spans_and_counters(self):
        graph = parse_ddl(FIG2_DDL, "BIBTEX")
        with obs.recording() as rec:
            result = QueryEngine().evaluate(FIG3_QUERY, graph)
        root = rec.roots[-1]
        assert root.name == "struql.query"
        blocks = [s for s in root.walk() if s.name == "struql.block"]
        assert len(blocks) == len(result.traces)
        # BlockTrace timings ARE the span timings.
        for trace, span in zip(result.traces, blocks):
            assert trace.span is span
            assert trace.seconds == span.seconds
        # Estimated vs actual cardinality on conditioned blocks.
        conditioned = [b for b in blocks
                       if "estimated_rows" in b.attributes]
        assert conditioned
        assert all("actual_rows" in b.attributes for b in conditioned)
        counters = rec.metrics.as_dict()["counters"]
        assert counters["struql.rows_produced"] > 0
        assert counters["struql.rows_scanned"] > 0
        assert counters["repository.index.builds"] >= 1

    def test_index_miss_counter_without_indexing(self):
        graph = parse_ddl(FIG2_DDL, "BIBTEX")
        with obs.recording() as rec:
            QueryEngine(indexing=False).evaluate(
                "input B where Publications(x), x -> \"year\" -> y "
                "create P(y) output O", graph)
        counters = rec.metrics.as_dict()["counters"]
        assert counters["repository.index.misses"] > 0

    def test_mediator_fetch_spans(self):
        from repro.mediator import DataSource, Mediator
        graph = parse_ddl(FIG2_DDL, "BIBTEX")
        mediator = Mediator("data")
        mediator.add_source(DataSource("BIBTEX", lambda: graph))
        mediator.add_mapping("""
            input BIBTEX
            where Publications(x)
            create F(x)
            link F(x) -> "of" -> x
            output data
        """)
        with obs.recording() as rec:
            mediator.warehouse()
        integrate = rec.roots[0]
        assert integrate.name == "mediator.integrate"
        names = [c.name for c in integrate.children]
        assert names == ["mediator.fetch", "mediator.map"]
        assert integrate.children[0].find("source.load") is not None
        counters = rec.metrics.as_dict()["counters"]
        assert counters["mediator.source_loads"] == 1
        assert counters["mediator.warehouse_builds"] == 1

    def test_noop_primitives_are_cheap(self):
        """The disabled fast path must stay trivially cheap."""
        recorder = obs.get_recorder()
        assert recorder is NULL_RECORDER
        counter = recorder.metrics.counter("x")
        histogram = recorder.metrics.histogram("y")
        started = time.perf_counter()
        for _ in range(100_000):
            with recorder.span("s", a=1):
                counter.inc()
                histogram.observe(0.1)
        elapsed = time.perf_counter() - started
        # ~3 µs/op budget: two orders of magnitude above observed cost,
        # only guards against the no-op path growing real work.
        assert elapsed < 0.3, f"no-op obs path too slow: {elapsed:.3f}s"

    def test_noop_overhead_on_f2_microloop(self):
        """Bench f2's DDL-parse loop must not regress with obs off."""
        def loop():
            started = time.perf_counter()
            for _ in range(10):
                parse_ddl(FIG2_DDL, "BIBTEX")
            return time.perf_counter() - started

        loop()  # warm up
        baseline = min(loop() for _ in range(3))
        with obs.recording():
            recorded = min(loop() for _ in range(3))
        # Even *with* recording the parse path is untouched; allow a
        # wide margin for CI noise — the real budget is 5%.
        assert recorded < baseline * 1.5 + 0.01


class TestEvents:
    def test_emit_captures_span_ids(self):
        with obs.recording() as rec:
            with rec.span("work") as span:
                event = obs.emit_event("info", "thing.happened",
                                       "message here", detail=3)
        assert event.level == "info"
        assert event.name == "thing.happened"
        assert event.message == "message here"
        assert event.attributes == {"detail": 3}
        assert event.span_id == span.span_id > 0
        assert event.trace_id == span.trace_id != ""
        assert event.span == "work"

    def test_emit_outside_span(self):
        with obs.recording() as rec:
            event = rec.events.emit("warning", "loose")
        assert event.span_id == 0 and event.trace_id == ""

    def test_level_filtering(self):
        log = obs.EventLog(level="warning")
        assert log.emit("debug", "quiet") is None
        assert log.emit("info", "quiet") is None
        assert log.emit("error", "loud") is not None
        assert [e.name for e in log.records()] == ["loud"]
        log.set_level("debug")
        log.debug("now-visible")
        assert len(log) == 2
        with pytest.raises(ValueError):
            log.emit("shout", "x")

    def test_ring_buffer_bounded(self):
        log = obs.EventLog(capacity=4)
        for i in range(10):
            log.info(f"e{i}")
        assert len(log) == 4
        assert log.dropped == 6
        assert [e.name for e in log.records()] == \
            ["e6", "e7", "e8", "e9"]

    def test_jsonl_round_trip(self, tmp_path):
        log = obs.EventLog()
        log.info("a", "first", k=1)
        log.error("b", span=None)
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(str(path)) == 2
        events = obs.read_jsonl(path.read_text())
        assert [e.name for e in events] == ["a", "b"]
        assert events[0].attributes == {"k": 1}
        assert events[1].level == "error"

    def test_streaming_sink(self, tmp_path):
        log = obs.EventLog()
        path = tmp_path / "stream.jsonl"
        log.open_sink(str(path))
        log.info("streamed", n=7)
        log.close_sink()
        events = obs.read_jsonl(path.read_text())
        assert events[0].name == "streamed"
        assert events[0].attributes == {"n": 7}

    def test_non_json_attributes_coerced(self):
        log = obs.EventLog()
        event = log.info("e", oid=object())
        assert isinstance(event.attributes["oid"], str)
        json.dumps(event.to_dict())  # must not raise

    def test_null_log_is_silent(self):
        null = obs.NULL_EVENTS
        assert null.emit("info", "x") is None
        assert null.debug("x") is None
        assert null.error("x", k=1) is None
        assert null.records() == [] and len(null) == 0

    def test_disabled_recorder_drops_events(self):
        assert obs.emit_event("info", "ignored") is None


class TestTraceIds:
    def test_ids_assigned_and_propagated(self):
        with obs.recording() as rec:
            with rec.span("root") as root:
                with rec.span("child") as child:
                    pass
            with rec.span("other") as other:
                pass
        assert root.span_id and child.span_id and other.span_id
        assert len({root.span_id, child.span_id, other.span_id}) == 3
        assert root.trace_id and root.trace_id == child.trace_id
        assert other.trace_id != root.trace_id

    def test_ids_survive_json_round_trip(self):
        with obs.recording() as rec:
            with rec.span("r"):
                obs.emit_event("info", "evt")
        spans, _, events = obs.from_json(obs.to_json(rec))
        assert spans[0].span_id == rec.roots[0].span_id
        assert spans[0].trace_id == rec.roots[0].trace_id
        assert len(events) == 1
        assert events[0].trace_id == spans[0].trace_id
        assert events[0].span_id == spans[0].span_id


class TestProfile:
    def _spans(self, *specs):
        """Build a span tree from (name, seconds, children) specs."""
        def build(spec):
            name, seconds, children = spec
            span = Span(name, {}, start=0.0, end=seconds)
            span.children = [build(c) for c in children]
            return span
        return [build(s) for s in specs]

    def test_self_and_cumulative(self):
        roots = self._spans(
            ("build", 1.0, [("query", 0.6, [("op", 0.2, [])]),
                            ("render", 0.3, [])]))
        entries = {e.name: e for e in obs.aggregate_profile(roots)}
        assert entries["build"].self_seconds == pytest.approx(0.1)
        assert entries["build"].cum_seconds == pytest.approx(1.0)
        assert entries["query"].self_seconds == pytest.approx(0.4)
        assert entries["query"].cum_seconds == pytest.approx(0.6)
        assert entries["op"].calls == 1
        assert entries["render"].mean_seconds == pytest.approx(0.3)

    def test_recursion_counts_outermost_only(self):
        roots = self._spans(
            ("f", 1.0, [("f", 0.6, [("f", 0.2, [])])]))
        entry = obs.aggregate_profile(roots)[0]
        assert entry.calls == 3
        # Self time sums every level: 0.4 + 0.4 + 0.2.
        assert entry.self_seconds == pytest.approx(1.0)
        # Cumulative counts the outermost occurrence once.
        assert entry.cum_seconds == pytest.approx(1.0)

    def test_sorted_by_self_time(self):
        roots = self._spans(("a", 0.1, []), ("b", 0.9, []))
        assert [e.name for e in obs.aggregate_profile(roots)] == \
            ["b", "a"]

    def test_render_profile_table(self):
        with obs.recording() as rec:
            with rec.span("stage.one"):
                time.sleep(0.001)
        text = obs.render_profile(rec)
        lines = text.splitlines()
        assert "stage" in lines[0] and "self ms" in lines[0]
        assert "stage.one" in text
        assert obs.render_profile([]) == "(no spans recorded)"


class TestPromExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("requests.total").inc(5)
        registry.gauge("index.size").set(42)
        hist = registry.histogram("lat")
        for value in (0.0002, 0.003, 0.003, 0.2, 50.0):
            hist.observe(value)
        return registry

    def test_every_instrument_appears(self):
        registry = self._registry()
        text = obs.to_prometheus(registry)
        parsed = obs.parse_prometheus(text)
        names = {name for name, _, _ in parsed["samples"]}
        assert "strudel_requests_total_total" in names
        assert "strudel_index_size" in names
        assert "strudel_lat_sum" in names and "strudel_lat_count" in names
        assert parsed["types"]["strudel_lat"] == "histogram"
        assert parsed["types"]["strudel_requests_total_total"] == "counter"
        assert parsed["types"]["strudel_index_size"] == "gauge"

    def test_bucket_monotonicity_and_count(self):
        registry = self._registry()
        parsed = obs.parse_prometheus(obs.to_prometheus(registry))
        buckets = [(float(labels["le"]) if labels["le"] != "+Inf"
                    else float("inf"), value)
                   for name, labels, value in parsed["samples"]
                   if name == "strudel_lat_bucket"]
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts), "buckets must be cumulative"
        assert bounds[-1] == float("inf")
        hist_count = next(v for n, _, v in parsed["samples"]
                          if n == "strudel_lat_count")
        assert counts[-1] == hist_count == 5
        hist_sum = next(v for n, _, v in parsed["samples"]
                        if n == "strudel_lat_sum")
        assert hist_sum == pytest.approx(50.2062)

    def test_round_trips_from_exported_document(self):
        """as_dict -> JSON -> to_prometheus matches the live registry."""
        registry = self._registry()
        document = json.loads(json.dumps(registry.as_dict()))
        assert obs.to_prometheus(document) == obs.to_prometheus(registry)

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-with/chars").inc()
        text = obs.to_prometheus(registry)
        assert "strudel_weird_name_with_chars_total" in text

    def test_empty_registry(self):
        assert obs.to_prometheus(MetricsRegistry()) == ""

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        obs.write_prometheus(self._registry(), str(path))
        assert path.read_text().endswith("\n")
        obs.parse_prometheus(path.read_text())  # parses cleanly

    def test_constant_labels_on_every_sample(self):
        registry = self._registry()
        text = obs.to_prometheus(registry, labels={"site": "fig2"})
        parsed = obs.parse_prometheus(text)
        for name, labels, _ in parsed["samples"]:
            assert labels["site"] == "fig2", name
        # Histogram buckets keep their le label next to the constant.
        bucket_labels = [labels for name, labels, _ in parsed["samples"]
                         if name == "strudel_lat_bucket"]
        assert bucket_labels and all("le" in ls for ls in bucket_labels)

    def test_label_values_escaped_round_trip(self):
        hostile = 'quote " backslash \\ newline \n done'
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(0.001)
        text = obs.to_prometheus(registry, labels={"path": hostile})
        # The newline was escaped into backslash-n, not emitted raw.
        assert "newline \\n done" in text
        assert "newline \n done" not in text
        parsed = obs.parse_prometheus(text)
        for name, labels, _ in parsed["samples"]:
            assert labels["path"] == hostile, name

    def test_escaped_backslash_n_is_not_a_newline(self):
        """The two-character sequence backslash-n must survive as-is."""
        from repro.obs.promexport import _unescape_label
        tricky = "a\\n"  # backslash + n, NOT a newline
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        text = obs.to_prometheus(registry, labels={"v": tricky})
        assert r'v="a\\n"' in text
        parsed = obs.parse_prometheus(text)
        assert parsed["samples"][0][1]["v"] == tricky
        assert _unescape_label("\\n") == "\n"
        assert _unescape_label("\\\\n") == "\\n"

    def test_escape_helpers(self):
        assert obs.escape_label_value('a"b') == 'a\\"b'
        assert obs.escape_label_value("a\\b") == "a\\\\b"
        assert obs.escape_label_value("a\nb") == "a\\nb"
        assert obs.format_labels(None) == ""
        assert obs.format_labels({}) == ""
        assert obs.format_labels({"a": 1, "b": "x"}) == '{a="1",b="x"}'
