"""The observability layer: spans, metrics, exporters, integration."""

import json
import threading
import time

import pytest

from repro import obs
from repro.ddl import parse_ddl
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_RECORDER, Span, TimedResult
from repro.sites.homepage import FIG2_DDL, FIG3_QUERY
from repro.struql.evaluator import QueryEngine


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test starts and ends with the global no-op recorder."""
    obs.disable()
    yield
    obs.disable()


class TestSpans:
    def test_nesting_and_ordering(self):
        with obs.recording() as rec:
            with rec.span("outer") as outer:
                with rec.span("first"):
                    pass
                with rec.span("second") as second:
                    with rec.span("inner"):
                        pass
                second.set(checked=True)
        assert [r.name for r in rec.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["first", "second"]
        assert [c.name for c in second.children] == ["inner"]
        assert second.attributes["checked"] is True
        assert [s.name for s in outer.walk()] == \
            ["outer", "first", "second", "inner"]

    def test_durations_nest(self):
        with obs.recording() as rec:
            with rec.span("outer") as outer:
                with rec.span("inner") as inner:
                    time.sleep(0.002)
        assert outer.seconds >= inner.seconds > 0

    def test_find(self):
        with obs.recording() as rec:
            with rec.span("a"):
                with rec.span("b", tag=1):
                    pass
        found = rec.roots[0].find("b")
        assert found is not None and found.attributes["tag"] == 1
        assert rec.roots[0].find("zzz") is None

    def test_exception_still_closes_span(self):
        with obs.recording() as rec:
            with pytest.raises(ValueError):
                with rec.span("boom"):
                    raise ValueError("x")
        span = rec.roots[0]
        assert span.end is not None
        assert rec.current() is None

    def test_threads_get_separate_roots(self):
        with obs.recording() as rec:
            def work(label):
                with rec.span(label):
                    with rec.span(f"{label}.child"):
                        pass
            threads = [threading.Thread(target=work, args=(f"t{i}",))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sorted(r.name for r in rec.roots) == \
            ["t0", "t1", "t2", "t3"]
        assert all(len(r.children) == 1 for r in rec.roots)

    def test_timed_is_real_even_when_disabled(self):
        with obs.timed("work", kind="test") as span:
            time.sleep(0.001)
        assert span.seconds >= 0.001
        assert span.attributes == {"kind": "test"}
        # ...but nothing was collected globally.
        assert obs.get_recorder() is NULL_RECORDER

    def test_timed_attaches_when_recording(self):
        with obs.recording() as rec:
            with obs.timed("work") as span:
                pass
        assert rec.roots == [span]

    def test_traced_decorator(self):
        @obs.traced("my.fn")
        def fn(x):
            return x * 2

        assert fn(3) == 6  # disabled: plain call
        with obs.recording() as rec:
            assert fn(4) == 8
        assert rec.roots[0].name == "my.fn"

    def test_noop_span_is_shared_and_inert(self):
        with obs.span("anything", a=1) as span:
            span.set(b=2)
        assert span.attributes == {}
        assert span.seconds == 0.0

    def test_recording_restores_previous(self):
        outer = obs.enable()
        with obs.recording() as inner:
            assert obs.get_recorder() is inner
        assert obs.get_recorder() is outer

    def test_clear(self):
        with obs.recording() as rec:
            with rec.span("x"):
                pass
            rec.metrics.counter("c").inc()
            rec.clear()
            assert rec.roots == []
            assert rec.metrics.as_dict()["counters"] == {}


class TestTimedResult:
    def test_seconds_from_span(self):
        span = Span("s", start=10.0, end=10.5)
        assert TimedResult(span=span).seconds == 0.5

    def test_seconds_without_span(self):
        assert TimedResult().seconds == 0.0


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        registry.gauge("depth").set(7)
        data = registry.as_dict()
        assert data["counters"]["hits"] == 5
        assert data["gauges"]["depth"] == 7

    def test_counter_thread_safety(self):
        counter = MetricsRegistry().counter("n")

        def bump():
            for _ in range(1000):
                counter.inc()
        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_histogram_percentiles_uniform(self):
        # 1..1000 ms uniform: p50 ~ 0.5 s, p90 ~ 0.9 s, p99 ~ 0.99 s.
        histogram = Histogram("lat")
        for i in range(1, 1001):
            histogram.observe(i / 1000.0)
        assert histogram.count == 1000
        assert abs(histogram.percentile(0.50) - 0.5) < 0.15
        assert abs(histogram.percentile(0.90) - 0.9) < 0.2
        assert histogram.percentile(0.99) <= histogram.max == 1.0
        assert histogram.percentile(0.50) < histogram.percentile(0.90) \
            <= histogram.percentile(0.99)
        assert abs(histogram.mean - 0.5005) < 1e-9

    def test_histogram_constant_distribution(self):
        histogram = Histogram("lat")
        for _ in range(100):
            histogram.observe(0.003)
        # All mass in one bucket, clamped to observed min/max.
        assert histogram.percentile(0.5) == pytest.approx(0.003, abs=1e-3)
        assert histogram.min == histogram.max == 0.003

    def test_histogram_overflow_bucket(self):
        histogram = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 50.0, 100.0):
            histogram.observe(value)
        assert histogram.percentile(1.0) == 100.0
        assert histogram.max == 100.0

    def test_histogram_empty(self):
        histogram = Histogram("lat")
        assert histogram.percentile(0.99) == 0.0
        summary = histogram.summary()
        assert summary["count"] == 0 and summary["min"] == 0.0

    def test_histogram_bounded_memory(self):
        histogram = Histogram("lat")
        for i in range(10000):
            histogram.observe(i * 0.001)
        assert len(histogram.bucket_counts) == \
            len(histogram.bounds) + 1

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(1.5)


class TestExport:
    def _sample_recorder(self):
        recorder = obs.TraceRecorder()
        with recorder.span("root", stage="build"):
            with recorder.span("child", n=2):
                pass
        recorder.metrics.counter("hits").inc(3)
        recorder.metrics.gauge("size").set(9)
        recorder.metrics.histogram("lat").observe(0.25)
        return recorder

    def test_json_round_trip(self):
        recorder = self._sample_recorder()
        text = obs.to_json(recorder)
        spans, metrics = obs.from_json(text)
        assert len(spans) == 1
        root = spans[0]
        assert root.name == "root"
        assert root.attributes == {"stage": "build"}
        assert [c.name for c in root.children] == ["child"]
        assert root.children[0].attributes == {"n": 2}
        original = recorder.roots[0]
        assert root.seconds == pytest.approx(original.seconds)
        assert metrics["counters"]["hits"] == 3
        assert metrics["gauges"]["size"] == 9
        assert metrics["histograms"]["lat"]["count"] == 1

    def test_json_is_valid_and_safe(self):
        recorder = obs.TraceRecorder()
        with recorder.span("r", oid=object()):
            pass
        parsed = json.loads(obs.to_json(recorder))
        assert isinstance(parsed["spans"][0]["attributes"]["oid"], str)

    def test_export_max_depth_prunes(self):
        recorder = obs.TraceRecorder()
        with recorder.span("a"):
            with recorder.span("b"):
                with recorder.span("c"):
                    pass
                with recorder.span("d"):
                    pass
        document = obs.export_state(recorder, max_depth=2)
        root = document["spans"][0]
        assert [c["name"] for c in root["children"]] == ["b"]
        assert root["children"][0]["children"] == []
        assert root["children"][0]["pruned"] == 2
        full = obs.export_state(recorder)
        b = full["spans"][0]["children"][0]
        assert [c["name"] for c in b["children"]] == ["c", "d"]
        assert "pruned" not in b

    def test_render_tree(self):
        recorder = self._sample_recorder()
        tree = obs.render_tree(recorder)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "stage=build" in lines[0]

    def test_render_tree_empty(self):
        assert "no spans" in obs.render_tree([])

    def test_render_metrics(self):
        recorder = self._sample_recorder()
        text = obs.render_metrics(recorder.metrics)
        assert "hits" in text and "p50" in text

    def test_write_json(self, tmp_path):
        recorder = self._sample_recorder()
        path = tmp_path / "obs.json"
        obs.write_json(recorder, str(path))
        spans, _ = obs.from_json(path.read_text())
        assert spans[0].name == "root"


class TestPipelineIntegration:
    def test_query_engine_emits_spans_and_counters(self):
        graph = parse_ddl(FIG2_DDL, "BIBTEX")
        with obs.recording() as rec:
            result = QueryEngine().evaluate(FIG3_QUERY, graph)
        root = rec.roots[-1]
        assert root.name == "struql.query"
        blocks = [s for s in root.walk() if s.name == "struql.block"]
        assert len(blocks) == len(result.traces)
        # BlockTrace timings ARE the span timings.
        for trace, span in zip(result.traces, blocks):
            assert trace.span is span
            assert trace.seconds == span.seconds
        # Estimated vs actual cardinality on conditioned blocks.
        conditioned = [b for b in blocks
                       if "estimated_rows" in b.attributes]
        assert conditioned
        assert all("actual_rows" in b.attributes for b in conditioned)
        counters = rec.metrics.as_dict()["counters"]
        assert counters["struql.rows_produced"] > 0
        assert counters["struql.rows_scanned"] > 0
        assert counters["repository.index.builds"] >= 1

    def test_index_miss_counter_without_indexing(self):
        graph = parse_ddl(FIG2_DDL, "BIBTEX")
        with obs.recording() as rec:
            QueryEngine(indexing=False).evaluate(
                "input B where Publications(x), x -> \"year\" -> y "
                "create P(y) output O", graph)
        counters = rec.metrics.as_dict()["counters"]
        assert counters["repository.index.misses"] > 0

    def test_mediator_fetch_spans(self):
        from repro.mediator import DataSource, Mediator
        graph = parse_ddl(FIG2_DDL, "BIBTEX")
        mediator = Mediator("data")
        mediator.add_source(DataSource("BIBTEX", lambda: graph))
        mediator.add_mapping("""
            input BIBTEX
            where Publications(x)
            create F(x)
            link F(x) -> "of" -> x
            output data
        """)
        with obs.recording() as rec:
            mediator.warehouse()
        integrate = rec.roots[0]
        assert integrate.name == "mediator.integrate"
        names = [c.name for c in integrate.children]
        assert names == ["mediator.fetch", "mediator.map"]
        assert integrate.children[0].find("source.load") is not None
        counters = rec.metrics.as_dict()["counters"]
        assert counters["mediator.source_loads"] == 1
        assert counters["mediator.warehouse_builds"] == 1

    def test_noop_primitives_are_cheap(self):
        """The disabled fast path must stay trivially cheap."""
        recorder = obs.get_recorder()
        assert recorder is NULL_RECORDER
        counter = recorder.metrics.counter("x")
        histogram = recorder.metrics.histogram("y")
        started = time.perf_counter()
        for _ in range(100_000):
            with recorder.span("s", a=1):
                counter.inc()
                histogram.observe(0.1)
        elapsed = time.perf_counter() - started
        # ~3 µs/op budget: two orders of magnitude above observed cost,
        # only guards against the no-op path growing real work.
        assert elapsed < 0.3, f"no-op obs path too slow: {elapsed:.3f}s"

    def test_noop_overhead_on_f2_microloop(self):
        """Bench f2's DDL-parse loop must not regress with obs off."""
        def loop():
            started = time.perf_counter()
            for _ in range(10):
                parse_ddl(FIG2_DDL, "BIBTEX")
            return time.perf_counter() - started

        loop()  # warm up
        baseline = min(loop() for _ in range(3))
        with obs.recording():
            recorded = min(loop() for _ in range(3))
        # Even *with* recording the parse path is untouched; allow a
        # wide margin for CI noise — the real budget is 5%.
        assert recorded < baseline * 1.5 + 0.01
