"""Direct unit tests for internal machinery: errors, skolem registry,
predicates, construction, plan operators, engine diagnostics."""

import pytest

from repro.errors import (
    AccessPatternError,
    ConstraintViolation,
    DDLError,
    MissingTemplateError,
    PageNotFoundError,
    StruQLSyntaxError,
    StrudelError,
    TemplateSyntaxError,
    UnboundVariableError,
    UnknownCollectionError,
    UnknownGraphError,
    UnknownObjectError,
    UnknownPredicateError,
)
from repro.graph import Atom, Graph, Oid
from repro.struql import (
    ExecutionContext,
    Plan,
    QueryEngine,
    SkolemRegistry,
    default_registry,
    parse_query,
)
from repro.struql.construction import GraphBuilder
from repro.struql.ast import (
    CollectSpec,
    Const,
    LinkSpec,
    SkolemTerm,
    Var,
)
from repro.struql.plan import make_op


class TestErrors:
    def test_all_derive_from_strudel_error(self):
        for exc in (DDLError("x"), UnknownGraphError("g"),
                    UnknownCollectionError("c"), UnknownObjectError("o"),
                    UnknownPredicateError("p"), UnboundVariableError("v"),
                    StruQLSyntaxError("s"), TemplateSyntaxError("t"),
                    MissingTemplateError(Oid("n")),
                    PageNotFoundError(Oid("n")),
                    AccessPatternError("a"),
                    ConstraintViolation("c", ["w"])):
            assert isinstance(exc, StrudelError)

    def test_positions_in_messages(self):
        assert "(line 3)" in str(DDLError("bad", line=3))
        assert "line 2, column 5" in str(StruQLSyntaxError("bad", 2, 5))

    def test_constraint_violation_truncates_witnesses(self):
        violation = ConstraintViolation("c", [f"w{i}" for i in range(9)])
        assert "+4 more" in str(violation)
        assert violation.witnesses[8] == "w8"

    def test_payload_attributes(self):
        assert UnknownPredicateError("frob").name == "frob"
        assert UnknownGraphError("g").name == "g"
        assert PageNotFoundError(Oid("p")).oid == Oid("p")


class TestSkolemRegistry:
    def test_bookkeeping(self):
        registry = SkolemRegistry()
        a = registry.apply("F", [Atom.int(1)])
        b = registry.apply("F", [Atom.int(2)])
        registry.apply("G", [])
        assert registry.functions() == ["F", "G"]
        assert registry.created_by("F") == [a, b]
        assert len(registry) == 3
        assert registry.all_created() == {a, b, registry.apply("G", [])}
        assert "F" in repr(registry)

    def test_unknown_function_empty(self):
        assert SkolemRegistry().created_by("nope") == []


class TestPredicateRegistry:
    def test_copy_is_independent(self):
        base = default_registry()
        clone = base.copy()
        clone.register("mine", lambda v: True)
        assert clone.has("mine") and not base.has("mine")

    def test_case_insensitive(self):
        registry = default_registry()
        assert registry.has("ISPOSTSCRIPT")
        assert registry.lookup("ispostscript")(Atom.file("a.ps"))

    def test_names_sorted(self):
        names = default_registry().names()
        assert names == sorted(names)

    def test_is_name_predicate(self):
        fn = default_registry().lookup("isName")
        assert fn(Atom.string("valid_name"))
        assert fn("bare-string")
        assert not fn(Atom.string("3starts-with-digit"))
        assert not fn(Atom.string(""))
        assert not fn(Atom.int(3))


class TestGraphBuilder:
    def make(self):
        data = Graph("in")
        data.add_node(Oid("d"))
        output = Graph("out")
        return GraphBuilder(output, data, SkolemRegistry()), data, output

    def test_resolve_const_var_skolem(self):
        builder, _, _ = self.make()
        row = {"x": Oid("d"), "l": "label"}
        assert builder.resolve(Const(Atom.int(3)), row) == Atom.int(3)
        assert builder.resolve(Var("x"), row) == Oid("d")
        term = SkolemTerm("F", (Var("x"),))
        assert builder.resolve(term, row) == Oid.skolem("F", (Oid("d"),))

    def test_unbound_variable_raises(self):
        from repro.errors import StruQLSemanticError
        builder, _, _ = self.make()
        with pytest.raises(StruQLSemanticError):
            builder.resolve(Var("missing"), {})

    def test_link_label_from_arc_variable(self):
        builder, _, output = self.make()
        row = {"x": Oid("d"), "l": "attr"}
        builder.apply_creates([SkolemTerm("F", (Var("x"),))], row)
        builder.apply_links([LinkSpec(SkolemTerm("F", (Var("x"),)),
                                      Var("l"), Var("x"))], row)
        f = Oid.skolem("F", (Oid("d"),))
        assert output.has_edge(f, "attr", Oid("d"))

    def test_link_label_must_be_labelable(self):
        from repro.errors import StruQLSemanticError
        builder, _, _ = self.make()
        row = {"x": Oid("d"), "l": Oid("d")}  # an oid can't be a label
        builder.apply_creates([SkolemTerm("F", (Var("x"),))], row)
        with pytest.raises(StruQLSemanticError):
            builder.apply_links([LinkSpec(SkolemTerm("F", (Var("x"),)),
                                          Var("l"), Var("x"))], row)

    def test_collect_string_becomes_atom(self):
        builder, _, output = self.make()
        builder.apply_collects([CollectSpec("Labels", Var("l"))],
                               {"l": "year"})
        assert output.collection("Labels") == [Atom.string("year")]


class TestPlanInternals:
    def test_plan_explain_lists_ops(self, fig2_graph):
        query = parse_query("""
            input BIBTEX
            where Publications(x), x -> "year" -> y, y > 1990
            create F(x)
            output O
        """)
        conditions = next(b for b in query.blocks()
                          if b.conditions).conditions
        plan = Plan.from_conditions(conditions)
        explained = plan.explain()
        assert "member/filter" in explained
        assert "compare" in explained
        assert len(plan) == 3
        assert "Plan(" in repr(plan)

    def test_empty_plan(self):
        plan = Plan([])
        assert plan.explain() == "(empty plan)"
        ctx = ExecutionContext(Graph("g"))
        assert plan.execute(ctx) == [{}]

    def test_ops_have_repr(self, fig2_graph):
        query = parse_query("""
            input BIBTEX
            where Publications(x), not(isPostScript(x)),
                  x -> * -> v, l in {"a"}
            create F(x)
            output O
        """)
        conditions = next(b for b in query.blocks()
                          if b.conditions).conditions
        for condition in conditions:
            op = make_op(condition)
            assert type(op).__name__ in repr(op)
            assert op.explain()

    def test_pipeline_short_circuits_on_empty(self, fig2_graph):
        ctx = ExecutionContext(fig2_graph)
        query = parse_query("""
            input BIBTEX
            where Publications(x), x -> "nope" -> v, v > 3
            create F(x)
            output O
        """)
        conditions = next(b for b in query.blocks()
                          if b.conditions).conditions
        plan = Plan.from_conditions(conditions)
        assert plan.execute(ctx) == []


class TestEngineDiagnostics:
    def test_result_explain_contains_plans(self, fig2_graph, fig3_query):
        result = QueryEngine().evaluate(fig3_query, fig2_graph)
        text = result.explain()
        assert "block" in text and "rows" in text
        assert "(no conditions)" in text  # the top block
        assert "edge-step" in text or "member/filter" in text

    def test_traces_have_timing(self, fig2_graph, fig3_query):
        result = QueryEngine().evaluate(fig3_query, fig2_graph)
        assert all(t.seconds >= 0 for t in result.traces)
        assert any(t.label == "Q1" for t in result.traces)
