"""The materialized-view registry: single-flight, admission,
footprint-driven invalidation, and the query-level entry point."""

import threading
import time

import pytest

from repro.graph import Atom, Graph, Oid
from repro.struql import QueryEngine
from repro.struql.analysis import (
    ANY_FOOTPRINT,
    Footprint,
    conditions_footprint,
    query_footprint,
    unit_footprint,
)
from repro.struql.matview import (
    ChangeSummary,
    MatViewRegistry,
    materialize_query,
)
from repro.struql.parser import parse_query
from repro.struql.rewriter import flatten


class TestChangeSummary:
    def test_builders_and_union(self):
        change = ChangeSummary.for_labels("year").union(
            ChangeSummary.for_collections("Publications"))
        assert change.labels == {"year"}
        assert change.collections == {"Publications"}
        assert not change.full

    def test_full_change(self):
        assert ChangeSummary.full_change().full


class TestFootprint:
    def test_intersects_by_label(self):
        footprint = Footprint(labels=frozenset({"year"}))
        assert footprint.intersects(ChangeSummary.for_labels("year"))
        assert not footprint.intersects(ChangeSummary.for_labels("note"))

    def test_intersects_by_collection(self):
        footprint = Footprint(collections=frozenset({"Publications"}))
        assert footprint.intersects(
            ChangeSummary.for_collections("Publications"))
        assert not footprint.intersects(
            ChangeSummary.for_collections("Other"))

    def test_any_label_matches_any_label_change(self):
        assert ANY_FOOTPRINT.intersects(ChangeSummary.for_labels("x"))
        assert ANY_FOOTPRINT.intersects(ChangeSummary.for_collections("C"))

    def test_full_and_none_always_intersect(self):
        empty = Footprint()
        assert empty.intersects(None)
        assert empty.intersects(ChangeSummary.full_change())
        # ... but an empty footprint ignores any concrete change.
        assert not empty.intersects(ChangeSummary.for_labels("x"))

    def test_conditions_footprint_collects_reads(self):
        query = parse_query(
            'input G where C(x), x -> "title" -> v output O')
        footprint = conditions_footprint(query.root.conditions)
        assert footprint.collections == {"C"}
        assert footprint.labels == {"title"}
        assert not footprint.any_label

    def test_arc_variable_is_wildcard_without_narrowing(self):
        query = parse_query("input G where C(x), x -> l -> v output O")
        footprint = conditions_footprint(query.root.conditions)
        assert footprint.any_label

    def test_equality_narrows_arc_variable(self):
        query = parse_query(
            'input G where C(x), x -> l -> v, l = "year" output O')
        footprint = conditions_footprint(query.root.conditions)
        assert footprint.labels == {"year"}
        assert not footprint.any_label

    def test_in_condition_narrows_arc_variable(self):
        query = parse_query(
            'input G where C(x), x -> l -> v, '
            'l in {"year", "month"} output O')
        footprint = conditions_footprint(query.root.conditions)
        assert footprint.labels == {"year", "month"}
        assert not footprint.any_label

    def test_negation_reads_count_but_do_not_narrow(self):
        query = parse_query(
            'input G where C(x), not(x -> "draft" -> y), '
            'x -> "title" -> t output O')
        footprint = conditions_footprint(query.root.conditions)
        assert {"draft", "title"} <= footprint.labels

    def test_unit_footprint_unrestricted_is_any(self):
        # x = y over unbound variables is active-domain dependent:
        # the footprint must be conservative.
        query = parse_query("input G where x = y collect C(x) output O")
        unit = flatten(query)[0]
        footprint = unit_footprint(unit)
        assert footprint.any_label and footprint.any_collection

    def test_query_footprint_inherits_block_narrowing(self):
        query = parse_query("""
            input G
            where C(x), x -> l -> v
            { where l = "year" collect Years(v) }
            output O
        """)
        footprint = query_footprint(query)
        # The outer block's arc variable is a wildcard, so the union is
        # wide — but the narrowed inner block alone is precise.
        assert footprint.any_label
        inner = conditions_footprint(
            list(query.root.conditions)
            + list(query.root.children[0].conditions))
        assert inner.labels == {"year"}


class TestRegistryServing:
    def test_miss_computes_then_hits(self):
        registry = MatViewRegistry()
        calls = []
        value = registry.get_or_compute(
            "k", lambda: calls.append(1) or "body")
        assert value == "body"
        assert registry.get_or_compute("k", lambda: "other") == "body"
        assert len(calls) == 1
        assert registry.stats["hits"] == 1
        assert registry.stats["misses"] == 1

    def test_errors_are_never_cached(self):
        registry = MatViewRegistry()

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            registry.get_or_compute("k", boom)
        assert len(registry) == 0
        # The key is computable again after the failure.
        assert registry.get_or_compute("k", lambda: "ok") == "ok"

    def test_lru_bound_holds(self):
        registry = MatViewRegistry(max_views=4)
        for i in range(10):
            registry.get_or_compute(f"k{i}", lambda i=i: i)
        assert len(registry) == 4
        assert registry.stats["evictions"] == 6

    def test_single_flight_collapses_concurrent_misses(self):
        registry = MatViewRegistry()
        calls = []
        release = threading.Event()

        def compute():
            calls.append(1)
            release.wait(5)
            return "body"

        results = []

        def worker():
            results.append(registry.get_or_compute("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        # Give every follower time to join the flight, then let the
        # one leader finish.
        time.sleep(0.1)
        release.set()
        for thread in threads:
            thread.join(10)
        assert results == ["body"] * 6
        assert len(calls) == 1
        assert registry.stats["singleflight_waits"] >= 5

    def test_admission_guard_bounds_inflight(self):
        registry = MatViewRegistry(max_inflight=2)
        running = []
        peak = []
        lock = threading.Lock()

        def compute(key):
            with lock:
                running.append(key)
                peak.append(len(running))
            time.sleep(0.05)
            with lock:
                running.remove(key)
            return key

        threads = [
            threading.Thread(
                target=lambda k=f"k{i}": registry.get_or_compute(
                    k, lambda: compute(k)))
            for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert max(peak) <= 2
        assert registry.stats["admission_waits"] >= 1
        assert len(registry) == 6

    def test_compute_straddling_invalidation_is_not_cached(self):
        registry = MatViewRegistry()
        entered = threading.Event()
        proceed = threading.Event()

        def compute():
            entered.set()
            proceed.wait(5)
            return "pre-change"

        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                registry.get_or_compute("k", compute)))
        thread.start()
        entered.wait(5)
        registry.invalidate()  # lands while the compute is running
        proceed.set()
        thread.join(10)
        # The caller got its value, but the possibly-stale result must
        # not have entered the cache.
        assert results == ["pre-change"]
        assert len(registry) == 0
        assert registry.stats["stale_discards"] == 1


class TestRegistryInvalidation:
    def _registry_with_views(self):
        registry = MatViewRegistry()
        registry.get_or_compute(
            "years", lambda: "y",
            footprint=Footprint(labels=frozenset({"year"})))
        registry.get_or_compute(
            "cats", lambda: "c",
            footprint=Footprint(labels=frozenset({"category"})))
        registry.get_or_compute("unknown", lambda: "u")  # no footprint
        return registry

    def test_selective_invalidation_by_footprint(self):
        registry = self._registry_with_views()
        dropped = registry.invalidate(ChangeSummary.for_labels("year"))
        # The year view and the footprint-less view drop; the category
        # view survives.
        assert dropped == 2
        assert registry.get("cats") is not None
        assert registry.get("years") is None
        assert registry.get("unknown") is None

    def test_unknown_footprint_always_drops(self):
        registry = self._registry_with_views()
        registry.invalidate(ChangeSummary.for_labels("nothing-reads-me"))
        assert registry.get("unknown") is None
        assert registry.get("years") is not None

    def test_none_change_drops_everything(self):
        registry = self._registry_with_views()
        assert registry.invalidate() == 3
        assert len(registry) == 0

    def test_source_change_drops_matching_views(self):
        registry = MatViewRegistry()
        registry.get_or_compute(
            "a", lambda: 1, footprint=Footprint(), sources=("bib",))
        registry.get_or_compute(
            "b", lambda: 2, footprint=Footprint(), sources=("other",))
        registry.invalidate(ChangeSummary.for_sources("bib"))
        assert registry.get("a") is None
        assert registry.get("b") is not None

    def test_snapshot_shape(self):
        registry = self._registry_with_views()
        registry.get_or_compute("years", lambda: "y")  # a hit
        snapshot = registry.snapshot(limit=2)
        assert snapshot["enabled"] is True
        assert snapshot["views"] == 3
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 3
        assert len(snapshot["top"]) == 2
        top = snapshot["top"][0]
        assert top["key"] == "years"
        assert top["footprint"]["labels"] == ["year"]


class TestQueryMaterialization:
    QUERY = """
        input G
        where Pubs(x), x -> "year" -> y
        create YearPage(y)
        link YearPage(y) -> "Year" -> y
        collect Years(YearPage(y))
        output O
    """

    def _data(self):
        graph = Graph("G")
        pub = Oid("pub1")
        graph.add_to_collection("Pubs", pub)
        graph.add_edge(pub, "year", Atom.int(1997))
        return graph

    def test_materialize_serves_same_graph_until_invalidated(self):
        registry = MatViewRegistry()
        engine = QueryEngine()
        graph = self._data()
        first = materialize_query(engine, self.QUERY, graph, registry)
        again = materialize_query(engine, self.QUERY, graph, registry)
        assert again is first  # served from the view, not re-evaluated
        assert registry.stats["hits"] == 1

        # An irrelevant change leaves the view alone ...
        registry.invalidate(ChangeSummary.for_labels("note"))
        assert materialize_query(
            engine, self.QUERY, graph, registry) is first
        # ... a footprint-intersecting one drops it.
        graph.add_edge(Oid("pub2"), "year", Atom.int(1998))
        graph.add_to_collection("Pubs", Oid("pub2"))
        registry.invalidate(ChangeSummary.for_labels("year").union(
            ChangeSummary.for_collections("Pubs")))
        fresh = materialize_query(engine, self.QUERY, graph, registry)
        assert fresh is not first
        assert len(fresh.collection("Years")) == 2

    def test_engine_entry_point(self):
        registry = MatViewRegistry()
        engine = QueryEngine()
        graph = self._data()
        result = engine.evaluate_materialized(
            self.QUERY, graph, registry)
        assert len(result.collection("Years")) == 1
        assert engine.evaluate_materialized(
            self.QUERY, graph, registry) is result

    def test_view_keyed_by_fingerprint_and_graph(self):
        registry = MatViewRegistry()
        engine = QueryEngine()
        graph = self._data()
        materialize_query(engine, self.QUERY, graph, registry)
        snapshot = registry.snapshot()
        from repro.obs.queries import fingerprint
        fp = fingerprint(parse_query(self.QUERY))
        assert snapshot["top"][0]["key"] == f"query:{fp}:G"
        assert snapshot["top"][0]["fingerprint"] == fp
        assert snapshot["top"][0]["sources"] == ["G"]
