"""StruQL evaluation: the two-stage semantics end to end.

Covers the paper's examples (PostScript pages, TextOnly copy, the
complement query, graph-closure expressiveness) plus construction rules
and multi-query composition.
"""

import pytest

from repro.errors import (
    StruQLSemanticError,
    UnboundVariableError,
    UnknownPredicateError,
)
from repro.graph import Atom, Graph, Oid
from repro.struql import QueryEngine, SkolemRegistry, evaluate, parse_query
from repro.struql.rewriter import compose


class TestPaperExamples:
    def test_postscript_pages(self, any_engine):
        """The paper's first example query."""
        graph = Graph("G")
        home = Oid("home")
        graph.add_to_collection("HomePages", home)
        graph.add_edge(home, "Paper", Atom.file("p1.ps"))
        graph.add_edge(home, "Paper", Atom.file("p2.html"))
        result = any_engine.evaluate("""
            input G
            where HomePages(p), p -> "Paper" -> q, isPostScript(q)
            collect PostscriptPages(q)
            output O
        """, graph)
        members = result.output.collection("PostscriptPages")
        assert members == [Atom.file("p1.ps")]

    def test_textonly_copy(self, tiny_graph, any_engine):
        """The TextOnly query: copy reachable graph minus image edges."""
        result = any_engine.evaluate("""
            input Site
            where Root(p), p -> * -> q, q -> l -> q2,
                  not(isImageFile(q2))
            create New(p), New(q), New(q2)
            link New(q) -> l -> New(q2)
            collect TextOnlyRoot(New(p))
            output TextOnly
        """, tiny_graph)
        out = result.output
        assert out.collection("TextOnlyRoot") == [
            Oid.skolem("New", (Oid("root"),))]
        labels = {e.label for e in out.edges()}
        assert "data" not in labels  # the image-file edge is gone
        assert {"sec", "pic", "txt", "next"} <= labels

    def test_complement_query(self, any_engine):
        """The active-domain complement example."""
        graph = Graph("G")
        a, b = Oid("a"), Oid("b")
        graph.add_edge(a, "e", b)
        result = any_engine.evaluate("""
            input G
            where not(p -> l -> q)
            create f(p), f(q)
            link f(p) -> l -> f(q)
            output C
        """, graph)
        out = result.output
        fa, fb = Oid.skolem("f", (a,)), Oid.skolem("f", (b,))
        assert not out.has_edge(fa, "e", fb)       # complemented away
        assert out.has_edge(fb, "e", fa)           # absent -> present
        assert out.has_edge(fa, "e", fa)
        assert out.has_edge(fb, "e", fb)

    def test_fig4_site_graph(self, fig4_site):
        """Fig 3 over Fig 2 produces exactly Fig 4's structure."""
        root = Oid.skolem("RootPage", ())
        abstracts = Oid.skolem("AbstractsPage", ())
        year97 = Oid.skolem("YearPage", (Atom.int(1997),))
        year98 = Oid.skolem("YearPage", (Atom.int(1998),))
        pres1 = Oid.skolem("PaperPresentation", (Oid("pub1"),))
        abs1 = Oid.skolem("AbstractPage", (Oid("pub1"),))
        assert fig4_site.has_edge(root, "AbstractsPage", abstracts)
        assert fig4_site.has_edge(root, "YearPage", year97)
        assert fig4_site.has_edge(root, "YearPage", year98)
        assert fig4_site.has_edge(year97, "Year", Atom.int(1997))
        assert fig4_site.has_edge(year97, "Paper", pres1)
        assert fig4_site.has_edge(pres1, "Abstract", abs1)
        assert fig4_site.has_edge(abstracts, "Abstract", abs1)
        # Presentations carry the copied publication attributes.
        titles = fig4_site.get(pres1, "title")
        assert len(titles) == 1
        # Three categories across the two pubs (Fig 4 shows this shape).
        category_pages = [n for n in fig4_site.nodes()
                          if n.skolem_fn == "CategoryPage"]
        assert len(category_pages) == 3

    def test_fig4_same_for_all_optimizers(self, fig2_graph, fig3_query):
        outputs = []
        for optimizer in ("naive", "heuristic", "cost"):
            out = QueryEngine(optimizer=optimizer).evaluate(
                fig3_query, fig2_graph).output
            outputs.append((out.node_count, set(out.edges())))
        assert outputs[0] == outputs[1] == outputs[2]


class TestExpressivePower:
    def test_transitive_closure_of_relation_by_composition(self,
                                                           any_engine):
        """The FO+TC claim: closure of an arbitrary binary relation as
        the composition of two queries."""
        graph = Graph("R")
        pairs = [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")]
        for index, (left, right) in enumerate(pairs):
            t = Oid(f"t{index}")
            graph.add_to_collection("R", t)
            graph.add_edge(t, "from", Atom.string(left))
            graph.add_edge(t, "to", Atom.string(right))
        build_graph = """
            input R
            where R(t), t -> "from" -> a, t -> "to" -> b
            create N(a), N(b)
            link N(a) -> "e" -> N(b)
            collect Nodes(N(a)), Nodes(N(b))
            output E
        """
        closure = """
            input E
            where Nodes(x), x -> "e" . "e"* -> y
            create M(x), M(y)
            link M(x) -> "tc" -> M(y)
            output TC
        """
        result = compose([build_graph, closure], graph)
        out = result.output
        def m(name):
            return Oid.skolem(
                "M", (Oid.skolem("N", (Atom.string(name),)),))
        assert out.has_edge(m("a"), "tc", m("d"))
        assert out.has_edge(m("a"), "tc", m("b"))
        assert out.has_edge(m("b"), "tc", m("d"))
        assert not out.has_edge(m("a"), "tc", m("y"))
        assert out.has_edge(m("x"), "tc", m("y"))


class TestConditions:
    @pytest.fixture
    def people(self) -> Graph:
        graph = Graph("G")
        for name, age in (("ann", 30), ("bob", 40), ("cy", 30)):
            oid = Oid(name)
            graph.add_to_collection("People", oid)
            graph.add_edge(oid, "age", Atom.int(age))
            graph.add_edge(oid, "name", Atom.string(name))
        return graph

    def run(self, text, graph, engine=None):
        engine = engine or QueryEngine()
        return engine.evaluate(text, graph).output

    def test_comparison_filters(self, people):
        out = self.run("""
            input G
            where People(p), p -> "age" -> a, a > 30
            collect Old(p)
            output O
        """, people)
        assert out.collection("Old") == [Oid("bob")]

    def test_equality_between_variables(self, people):
        out = self.run("""
            input G
            where People(p), People(q), p -> "age" -> a,
                  q -> "age" -> b, a = b, p != q
            collect SameAge(p)
            output O
        """, people)
        assert set(out.collection("SameAge")) == {Oid("ann"), Oid("cy")}

    def test_in_condition_binds(self, people):
        out = self.run("""
            input G
            where People(p), p -> l -> v, l in {"age"}
            collect Ages(v)
            output O
        """, people)
        assert set(out.collection("Ages")) == {Atom.int(30), Atom.int(40)}

    def test_coercion_in_comparison(self, people):
        out = self.run("""
            input G
            where People(p), p -> "age" -> a, a = "30"
            collect Thirty(p)
            output O
        """, people)
        assert set(out.collection("Thirty")) == {Oid("ann"), Oid("cy")}

    def test_unknown_predicate(self, people):
        with pytest.raises(UnknownPredicateError):
            self.run("""
                input G
                where People(p), frobnicate(p)
                collect X(p)
                output O
            """, people)

    def test_custom_predicate(self, people):
        from repro.struql import default_registry
        registry = default_registry()
        registry.register("isShortName",
                          lambda v: len(str(v.value)) <= 2)
        engine = QueryEngine(predicates=registry)
        out = self.run("""
            input G
            where People(p), p -> "name" -> n, isShortName(n)
            collect Short(p)
            output O
        """, people, engine)
        assert out.collection("Short") == [Oid("cy")]

    def test_backward_anchored_edge(self, people):
        out = self.run("""
            input G
            where p -> "age" -> 40
            collect Exactly40(p)
            output O
        """, people)
        assert out.collection("Exactly40") == [Oid("bob")]

    def test_schema_scan_arc_variable(self, people):
        """Querying the schema: all attribute names in the graph."""
        out = self.run("""
            input G
            where x -> l -> v
            collect Labels(l)
            output O
        """, people)
        assert set(out.collection("Labels")) == {Atom.string("age"),
                                                 Atom.string("name")}

    def test_empty_collection_yields_nothing(self, people):
        people.declare_collection("Empty")
        out = self.run("""
            input G
            where Empty(x)
            create F(x)
            collect R(F(x))
            output O
        """, people)
        assert out.collection("R") == []


class TestConstruction:
    def test_skolem_dedup_across_rows(self, fig2_graph):
        """Each (fn, args) pair mints exactly one node across all rows."""
        out = evaluate("""
            input BIBTEX
            where Publications(x), x -> l -> v
            create Page(x)
            collect Pages(Page(x))
            output O
        """, fig2_graph)
        assert len(out.collection("Pages")) == 2

    def test_zero_arg_skolem_singleton(self, fig2_graph):
        out = evaluate("""
            input BIBTEX
            where Publications(x)
            create Home()
            link Home() -> "pub" -> x
            output O
        """, fig2_graph)
        homes = [n for n in out.nodes() if n.skolem_fn == "Home"]
        assert len(homes) == 1
        assert len(out.get(homes[0], "pub")) == 2

    def test_arc_variable_as_link_label(self, fig2_graph):
        out = evaluate("""
            input BIBTEX
            where Publications(x), x -> l -> v
            create Copy(x)
            link Copy(x) -> l -> v
            output O
        """, fig2_graph)
        copy1 = Oid.skolem("Copy", (Oid("pub1"),))
        assert set(out.labels_of(copy1)) == \
            set(fig2_graph.labels_of(Oid("pub1")))

    def test_immutability_enforced_at_runtime(self, fig2_graph):
        # Input nodes referenced as link targets never gain edges; a
        # Skolem identity colliding with an input node is caught.
        graph = Graph("G")
        trap = Oid.skolem("F", (Atom.int(1),))
        graph.add_node(trap)           # input graph contains "F(1)"
        graph.add_to_collection("C", trap)
        engine = QueryEngine()
        with pytest.raises(StruQLSemanticError):
            engine.evaluate("""
                input G
                where C(x)
                create F(1)
                link F(1) -> "l" -> x
                output O
            """, graph, output=graph.copy("O"))

    def test_collect_skolem_term(self, tiny_graph):
        out = evaluate("""
            input Site
            where Root(p)
            create Top(p)
            collect Tops(Top(p))
            output O
        """, tiny_graph)
        assert out.collection("Tops") == [Oid.skolem("Top", (Oid("root"),))]

    def test_output_contains_only_referenced_data(self, fig2_graph):
        out = evaluate("""
            input BIBTEX
            where Publications(x), x -> "year" -> y
            create P(x)
            link P(x) -> "year" -> y
            output O
        """, fig2_graph)
        # pub1/pub2 themselves are not in the output graph; only the
        # new pages and the year atoms are.
        assert not out.has_node(Oid("pub1"))
        assert out.node_count == 2

    def test_extend_existing_output(self, fig2_graph):
        engine = QueryEngine()
        skolem = SkolemRegistry()
        first = engine.evaluate("""
            input BIBTEX
            where Publications(x)
            create P(x)
            collect Pages(P(x))
            output O
        """, fig2_graph, skolem=skolem)
        second = engine.evaluate("""
            input BIBTEX
            where Publications(x), x -> "year" -> y
            create P(x), Nav()
            link Nav() -> "to" -> P(x)
            output O
        """, fig2_graph, output=first.output, skolem=skolem)
        out = second.output
        nav = Oid.skolem("Nav", ())
        assert len(out.get(nav, "to")) == 2
        assert len(out.collection("Pages")) == 2


class TestEngineDiagnostics:
    def test_traces_capture_rows(self, fig2_graph, fig3_query):
        result = QueryEngine().evaluate(fig3_query, fig2_graph)
        assert result.total_bindings > 0
        text = result.explain()
        assert "rows" in text and "Q1" in "".join(
            t.label for t in result.traces)

    def test_unbound_comparison_raises(self, fig2_graph):
        engine = QueryEngine(optimizer="naive")
        query = parse_query("""
            input BIBTEX
            where a < b, Publications(a)
            collect X(a)
            output O
        """)
        # Naive order delays the comparison until executable; both a and
        # b can never bind b, so the runtime reports the unbound var.
        with pytest.raises(UnboundVariableError):
            engine.evaluate(query, fig2_graph)
