"""Form-driven dynamic pages: parameterized queries at click time."""

import pytest

from repro.errors import SiteError, UnboundVariableError
from repro.graph import Atom, Oid
from repro.site import FormHandler, register_string_predicates
from repro.struql import QueryEngine, default_registry, parse_query
from repro.templates import TemplateSet

SEARCH_QUERY = """
input BIBTEX
{ where Publications(x), x -> "title" -> t, contains(t, kw)
  create Results(kw), Hit(kw, x)
  link Hit(kw, x) -> "title" -> t,
       Results(kw) -> "Hit" -> Hit(kw, x),
       Results(kw) -> "term" -> kw }
output SearchSite
"""


def search_templates() -> TemplateSet:
    templates = TemplateSet()
    templates.add("Results", """<HTML><BODY>
<H1>Results for "<SFMT @term>"</H1>
<SFMTLIST @Hit FORMAT=EMBED DELIM="<BR>">
</BODY></HTML>""")
    templates.add("Hit", "<SFMT @title>", as_page=False)
    return templates


@pytest.fixture
def handler(fig2_graph):
    return FormHandler(SEARCH_QUERY, fig2_graph, search_templates(),
                       result_fn="Results", params=("kw",))


class TestParameterizedQueries:
    def test_params_assumed_bound_at_parse(self):
        query = parse_query(SEARCH_QUERY, params=("kw",))
        assert query.params == ("kw",)

    def test_undeclared_param_fails_at_evaluation(self, fig2_graph):
        # Without the declaration the query still parses (kw is
        # mentioned in a condition), but no execution order can bind
        # it: the runtime reports the unbound variable.
        query = parse_query(SEARCH_QUERY)
        registry = default_registry()
        register_string_predicates(registry)
        with pytest.raises(UnboundVariableError):
            QueryEngine(predicates=registry).evaluate(query, fig2_graph)

    def test_evaluate_requires_initial(self, fig2_graph):
        registry = default_registry()
        register_string_predicates(registry)
        engine = QueryEngine(predicates=registry)
        query = parse_query(SEARCH_QUERY, params=("kw",))
        with pytest.raises(UnboundVariableError):
            engine.evaluate(query, fig2_graph)
        result = engine.evaluate(query, fig2_graph,
                                 initial={"kw": Atom.string("Regular")})
        page = Oid.skolem("Results", (Atom.string("Regular"),))
        assert result.output.has_node(page)


class TestFormHandler:
    def test_submission_renders_matches(self, handler):
        response = handler.submit(kw="Regular")
        assert response.page == Oid.skolem(
            "Results", (Atom.string("Regular"),))
        assert "Optimizing Regular Path Expressions" in response.html
        assert "Specifying" not in response.html

    def test_case_insensitive_contains(self, handler):
        response = handler.submit(kw="optimizing")
        assert "Optimizing" in response.html

    def test_distinct_params_distinct_pages(self, handler):
        one = handler.submit(kw="Regular")
        two = handler.submit(kw="Machine")
        assert one.page != two.page
        assert "Machine Instructions" in two.html

    def test_caching(self, handler):
        first = handler.submit(kw="Regular")
        second = handler.submit(kw="Regular")
        assert not first.from_cache and second.from_cache
        assert handler.stats["evaluations"] == 1
        handler.invalidate()
        third = handler.submit(kw="Regular")
        assert not third.from_cache

    def test_no_matches_is_still_a_page_problem(self, handler):
        # No publication contains "zzz": the Results page is never
        # created, which the handler reports cleanly.
        with pytest.raises(SiteError):
            handler.submit(kw="zzz")

    def test_missing_and_extra_params(self, handler):
        with pytest.raises(SiteError):
            handler.submit()
        with pytest.raises(SiteError):
            handler.submit(kw="x", other="y")

    def test_query_without_params_rejected(self, fig2_graph):
        with pytest.raises(SiteError):
            FormHandler("""
                input BIBTEX
                where Publications(x)
                create P(x)
                output O
            """, fig2_graph, search_templates(), result_fn="P")

    def test_string_predicates(self):
        registry = default_registry()
        register_string_predicates(registry)
        assert registry.lookup("startsWith")(Atom.string("Hello"), "he")
        assert registry.lookup("endsWith")(Atom.string("Hello"), "LO")
        assert registry.lookup("iequals")(Atom.string("AbC"), "aBc")
        assert not registry.lookup("contains")(Atom.string("x"), "y")
