"""The HTML-template language parser (Fig 6 grammar)."""

import pytest

from repro.errors import TemplateSyntaxError
from repro.graph import Atom
from repro.templates import parse_template
from repro.templates.ast import (
    AndCond,
    AttrExpr,
    CmpCond,
    Constant,
    ExistsCond,
    ForExpr,
    FormatExpr,
    IfExpr,
    ListExpr,
    NotCondT,
    Null,
    OrCond,
    Text,
)


def parse(text: str):
    return parse_template("t", text).nodes


class TestPlainText:
    def test_passthrough(self):
        nodes = parse("<html><b>bold</b></html>")
        assert len(nodes) == 1
        assert isinstance(nodes[0], Text)

    def test_interleaving(self):
        nodes = parse("a<SFMT @x>b<SFMT @y>c")
        kinds = [type(n).__name__ for n in nodes]
        assert kinds == ["Text", "FormatExpr", "Text", "FormatExpr",
                         "Text"]

    def test_case_insensitive_tags(self):
        nodes = parse("<sfmt @x>")
        assert isinstance(nodes[0], FormatExpr)

    def test_ordinary_angle_brackets_untouched(self):
        nodes = parse("<p>if x < 3 then</p>")
        assert isinstance(nodes[0], Text)


class TestSfmt:
    def test_simple(self):
        (node,) = parse("<SFMT @title>")
        assert node.expr == AttrExpr(("title",))
        assert node.format is None and node.tag is None

    def test_dotted_path(self):
        (node,) = parse("<SFMT @Paper.Name>")
        assert node.expr.segments == ("Paper", "Name")

    def test_format_embed(self):
        (node,) = parse("<SFMT @x FORMAT=EMBED>")
        assert node.format == "EMBED"

    def test_format_link(self):
        (node,) = parse("<SFMT @x format=link>")
        assert node.format == "LINK"

    def test_bad_format(self):
        with pytest.raises(TemplateSyntaxError):
            parse("<SFMT @x FORMAT=FANCY>")

    def test_tag_string(self):
        (node,) = parse('<SFMT @ps TAG="Download">')
        assert node.tag == "Download"

    def test_tag_attr_expr(self):
        (node,) = parse("<SFMT @ps TAG=@title>")
        assert node.tag == AttrExpr(("title",))

    def test_unknown_option(self):
        with pytest.raises(TemplateSyntaxError):
            parse("<SFMT @x COLOR=red>")

    def test_missing_expr(self):
        with pytest.raises(TemplateSyntaxError):
            parse("<SFMT FORMAT=EMBED>")


class TestSif:
    def test_bare_exists(self):
        (node,) = parse("<SIF @journal>J</SIF>")
        assert isinstance(node, IfExpr)
        assert node.cond == ExistsCond(AttrExpr(("journal",)))
        assert isinstance(node.then[0], Text)
        assert node.orelse == []

    def test_else_branch(self):
        (node,) = parse("<SIF @a>yes<SELSE>no</SIF>")
        assert node.then[0].text == "yes"
        assert node.orelse[0].text == "no"

    def test_comparison(self):
        (node,) = parse('<SIF @type = "article">A</SIF>')
        assert node.cond == CmpCond(AttrExpr(("type",)), "=",
                                    Constant(Atom.string("article")))

    def test_null_comparison(self):
        (node,) = parse("<SIF @month = NULL>none</SIF>")
        assert node.cond.right == Null()

    def test_parenthesized_ordering(self):
        (node,) = parse("<SIF (@year > 1997)>recent</SIF>")
        assert node.cond.op == ">"
        assert node.cond.right == Constant(Atom.int(1997))

    def test_and_or_not(self):
        (node,) = parse("<SIF @a AND NOT @b OR @c>x</SIF>")
        assert isinstance(node.cond, OrCond)
        assert isinstance(node.cond.left, AndCond)
        assert isinstance(node.cond.left.right, NotCondT)

    def test_nested_ifs(self):
        (node,) = parse("<SIF @a><SIF @b>both</SIF></SIF>")
        assert isinstance(node.then[0], IfExpr)

    def test_missing_closer(self):
        with pytest.raises(TemplateSyntaxError):
            parse("<SIF @a>unclosed")

    def test_stray_selse(self):
        with pytest.raises(TemplateSyntaxError):
            parse("text<SELSE>more")

    def test_stray_closer(self):
        with pytest.raises(TemplateSyntaxError):
            parse("</SIF>")

    def test_constant_alone_rejected(self):
        with pytest.raises(TemplateSyntaxError):
            parse("<SIF 3>x</SIF>")

    def test_boolean_constants(self):
        (node,) = parse("<SIF @flag = TRUE>x</SIF>")
        assert node.cond.right == Constant(Atom.bool(True))


class TestSfor:
    def test_basic(self):
        (node,) = parse("<SFOR a @author><SFMT @a></SFOR>")
        assert isinstance(node, ForExpr)
        assert node.var == "a" and node.expr == AttrExpr(("author",))
        assert isinstance(node.body[0], FormatExpr)

    def test_optional_in_keyword(self):
        (node,) = parse("<SFOR a IN @author>x</SFOR>")
        assert node.var == "a"

    def test_options(self):
        (node,) = parse(
            '<SFOR y @YearPage ORDER=descend KEY=Year DELIM=", ">'
            "<SFMT @y></SFOR>")
        assert node.order == "descend"
        assert node.key == "Year"
        assert node.delim == ", "

    def test_bad_order(self):
        with pytest.raises(TemplateSyntaxError):
            parse("<SFOR a @x ORDER=sideways>y</SFOR>")

    def test_missing_closer(self):
        with pytest.raises(TemplateSyntaxError):
            parse("<SFOR a @x>body")


class TestSfmtList:
    def test_basic(self):
        (node,) = parse("<SFMTLIST @YearPage>")
        assert isinstance(node, ListExpr)
        assert node.wrap is None

    def test_wrap_variants(self):
        assert parse("<SFMTLIST @x WRAP=UL>")[0].wrap == "UL"
        assert parse("<SFMTLIST @x WRAP=ol>")[0].wrap == "OL"
        assert parse("<SFMTLIST @x WRAP=NONE>")[0].wrap is None

    def test_bad_wrap(self):
        with pytest.raises(TemplateSyntaxError):
            parse("<SFMTLIST @x WRAP=TABLE>")

    def test_full_options(self):
        (node,) = parse('<SFMTLIST @p FORMAT=EMBED ORDER=ascend KEY=year '
                        'DELIM="<HR>" TAG=@title>')
        assert node.format == "EMBED"
        assert node.order == "ascend"
        assert node.delim == "<HR>"
        assert node.tag == AttrExpr(("title",))


class TestTemplateObject:
    def test_walk_covers_nesting(self):
        template = parse_template("t", "<SIF @a><SFOR x @b>"
                                       "<SFMT @x></SFOR></SIF>")
        kinds = [type(n).__name__ for n in template.walk()]
        assert kinds == ["IfExpr", "ForExpr", "FormatExpr"]

    def test_source_retained(self):
        source = "line1\nline2 <SFMT @x>"
        template = parse_template("t", source)
        assert template.source == source
