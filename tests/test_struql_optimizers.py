"""Optimizers: ordering validity, equivalence, and that plans exploit
bound variables and statistics sensibly."""

import math

import pytest

from repro.graph import Atom, Graph, Oid
from repro.repository.stats import GraphStatistics
from repro.struql import QueryEngine, default_registry, parse_query
from repro.struql.ast import (
    ComparisonCond,
    Const,
    MembershipCond,
    NotCond,
    PathCond,
    Var,
)
from repro.struql.optimizer import get_optimizer
from repro.struql.optimizer.base import executable
from repro.struql.optimizer.cost import (
    access_path_for,
    annotate_plan,
    candidate_access_paths,
    estimate_condition,
    estimate_path_fanout,
    trace_decisions,
)


@pytest.fixture
def skewed_graph() -> Graph:
    """A big collection and a tiny one, so ordering matters."""
    graph = Graph("G")
    for index in range(200):
        oid = Oid(f"big{index}")
        graph.add_to_collection("Big", oid)
        graph.add_edge(oid, "v", Atom.int(index % 7))
    for index in range(3):
        oid = Oid(f"small{index}")
        graph.add_to_collection("Small", oid)
        graph.add_edge(oid, "v", Atom.int(index))
        graph.add_edge(oid, "big", Oid(f"big{index}"))
    return graph


def conditions_of(text: str):
    query = parse_query(f"input G where {text} create X() output O")
    return next(b for b in query.blocks() if b.conditions).conditions


class TestExecutable:
    def test_predicate_needs_bound_args(self, skewed_graph):
        registry = default_registry()
        (cond,) = conditions_of("isPostScript(q)")
        assert not executable(cond, set(), skewed_graph, registry)
        assert executable(cond, {"q"}, skewed_graph, registry)

    def test_collection_always_executable(self, skewed_graph):
        registry = default_registry()
        (cond,) = conditions_of("Big(x)")
        assert executable(cond, set(), skewed_graph, registry)

    def test_equality_needs_one_side(self, skewed_graph):
        registry = default_registry()
        (cond,) = conditions_of("a = b")
        assert not executable(cond, set(), skewed_graph, registry)
        assert executable(cond, {"a"}, skewed_graph, registry)

    def test_ordered_comparison_needs_both(self, skewed_graph):
        registry = default_registry()
        (cond,) = conditions_of("a < 3")
        assert executable(cond, {"a"}, skewed_graph, registry)
        (cond2,) = conditions_of("a < b")
        assert not executable(cond2, {"a"}, skewed_graph, registry)


class TestOrdering:
    def order(self, name, text, graph, bound=frozenset()):
        optimizer = get_optimizer(name)
        return optimizer.order(conditions_of(text), set(bound), graph,
                               default_registry(),
                               GraphStatistics.gather(graph))

    def test_naive_keeps_source_order(self, skewed_graph):
        ordered = self.order("naive", "Big(x), Small(y)", skewed_graph)
        assert [c.name for c in ordered] == ["Big", "Small"]

    def test_naive_delays_nonexecutable(self, skewed_graph):
        ordered = self.order("naive", "isPostScript(q), Big(q)",
                             skewed_graph)
        assert isinstance(ordered[0], MembershipCond)
        assert ordered[0].name == "Big"

    def test_heuristic_binds_constants_first(self, skewed_graph):
        ordered = self.order(
            "heuristic", 'Big(x), x -> "v" -> w, w = 3', skewed_graph)
        # An equality against a constant is a free bind: it runs before
        # any generator, anchoring the edge step from the value side.
        kinds = [type(c).__name__ for c in ordered]
        assert kinds == ["ComparisonCond", "MembershipCond", "PathCond"]

    def test_heuristic_defers_free_negation(self, skewed_graph):
        ordered = self.order(
            "heuristic", "not(p -> l -> q), Big(p), p -> l -> q2",
            skewed_graph)
        assert isinstance(ordered[-1], NotCond)

    def test_cost_starts_with_small_collection(self, skewed_graph):
        ordered = self.order(
            "cost", "Big(x), Small(y), y -> \"big\" -> x", skewed_graph)
        assert ordered[0].name == "Small"
        # Then traverse from the bound side; the big scan never runs as
        # a generator but as a membership filter at the end.
        assert isinstance(ordered[1], PathCond)

    def test_cost_uses_bound_seed(self, skewed_graph):
        ordered = self.order(
            "cost", "Big(x), x -> \"v\" -> w", skewed_graph,
            bound={"x"})
        # With x pre-bound the membership check is a cheap filter first.
        assert ordered[0].name == "Big"

    def test_all_optimizers_produce_same_bindings(self, skewed_graph):
        text = """
            input G
            where Small(y), y -> "big" -> x, x -> "v" -> w, w != 99
            create R(y, x)
            collect Out(R(y, x))
            output O
        """
        results = []
        for optimizer in ("naive", "heuristic", "cost"):
            out = QueryEngine(optimizer=optimizer).evaluate(
                text, skewed_graph).output
            results.append(frozenset(out.collection("Out")))
        assert results[0] == results[1] == results[2]
        assert len(results[0]) == 3


class TestCostModel:
    def test_collection_multiplier_is_size(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        (big,) = conditions_of("Big(x)")
        (small,) = conditions_of("Small(x)")
        big_mult, _ = estimate_condition(big, set(), stats)
        small_mult, _ = estimate_condition(small, set(), stats)
        assert big_mult == 200 and small_mult == 3

    def test_bound_membership_is_selective(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        (big,) = conditions_of("Big(x)")
        mult, _ = estimate_condition(big, {"x"}, stats)
        assert mult < 1.0

    def test_filter_selectivities(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        (eq,) = conditions_of("a = 3")
        (ne,) = conditions_of("a != 3")
        eq_mult, _ = estimate_condition(eq, {"a"}, stats)
        ne_mult, _ = estimate_condition(ne, {"a"}, stats)
        assert eq_mult < ne_mult

    def test_free_negation_is_huge(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        (neg,) = conditions_of("not(p -> l -> q)")
        mult, _ = estimate_condition(neg, set(), stats)
        assert mult > stats.node_count

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError):
            get_optimizer("quantum")

    def test_dp_falls_back_to_greedy_beyond_limit(self, skewed_graph):
        # 12 conditions > DP_LIMIT: just verify it still orders validly.
        text = ", ".join(f'x -> "v" -> w{i}' for i in range(11))
        conditions = conditions_of(f"Big(x), {text}")
        optimizer = get_optimizer("cost")
        ordered = optimizer.order(conditions, set(), skewed_graph,
                                  default_registry(),
                                  GraphStatistics.gather(skewed_graph))
        assert len(ordered) == len(conditions)
        assert ordered[0].name == "Big"


class TestFanoutEdgeCases:
    """estimate_path_fanout on degenerate shapes and empty stats."""

    def path_of(self, text: str):
        (cond,) = conditions_of(f"x -> {text} -> y")
        return cond.path

    def fanouts(self, stats):
        shapes = ['"v"', '("v" | "big")', '("v" . "big")', "*",
                  '("v" | "big")*', '("v"* . "big")',
                  '("v" | "big" | "v"*)']
        return [estimate_path_fanout(self.path_of(s), stats)
                for s in shapes]

    def test_finite_nonnegative_on_real_stats(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        for fan in self.fanouts(stats):
            assert math.isfinite(fan)
            assert fan > 0

    def test_finite_nonnegative_on_empty_graph(self):
        stats = GraphStatistics.gather(Graph("EMPTY"))
        for fan in self.fanouts(stats):
            assert math.isfinite(fan)
            assert fan > 0

    def test_alternation_sums_but_caps(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        a = estimate_path_fanout(self.path_of('"v"'), stats)
        b = estimate_path_fanout(self.path_of('"big"'), stats)
        alt = estimate_path_fanout(self.path_of('("v" | "big")'), stats)
        cap = stats.node_count + stats.atom_count
        assert alt == pytest.approx(min(a + b, cap))
        wide = "(" + " | ".join(["*"] * 50) + ")"
        assert estimate_path_fanout(self.path_of(wide), stats) <= cap

    def test_star_bounded_by_domain(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        fan = estimate_path_fanout(self.path_of("*"), stats)
        assert 1.0 <= fan <= stats.node_count + stats.atom_count

    def test_concat_of_stars_capped(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        fan = estimate_path_fanout(self.path_of('("v"* . "big"*)'), stats)
        assert math.isfinite(fan)
        assert fan <= stats.node_count + stats.atom_count

    def test_estimate_condition_on_empty_stats(self):
        stats = GraphStatistics.gather(Graph("EMPTY"))
        for text in ("Big(x)", 'x -> "v" -> y', "x -> * -> y",
                     "a = 3", "a != 3", "not(p -> l -> q)"):
            (cond,) = conditions_of(text)
            for bound in (set(), {"x", "a", "p"}):
                mult, weight = estimate_condition(cond, bound, stats)
                assert math.isfinite(mult) and mult >= 0
                assert math.isfinite(weight) and weight >= 0


class TestAccessPaths:
    def test_candidates_cover_condition_types(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        cases = {
            "Big(x)": "collection-scan",
            'x -> "v" -> y': "attribute-extent-scan",
            "a = 3": "equality-bind",
        }
        for text, expected in cases.items():
            (cond,) = conditions_of(text)
            arms = candidate_access_paths(cond, set(), stats,
                                          graph=skewed_graph)
            assert arms, text
            chosen = [a for a in arms if a["chosen"]]
            assert len(chosen) == 1
            assert chosen[0]["applicable"]
            assert chosen[0]["access_path"] == expected
            for arm in arms:
                assert math.isfinite(arm["est_cost"])

    def test_bound_edge_uses_index(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        (cond,) = conditions_of('x -> "v" -> y')
        path = access_path_for(cond, {"x"}, stats, graph=skewed_graph)
        assert path == "forward-index"

    def test_annotate_plan_sets_estimates(self, skewed_graph):
        from repro.struql.plan import Plan

        stats = GraphStatistics.gather(skewed_graph)
        conditions = conditions_of('Big(x), x -> "v" -> w, w = 3')
        optimizer = get_optimizer("cost")
        ordered = optimizer.order(conditions, set(), skewed_graph,
                                  default_registry(), stats)
        plan = Plan.from_conditions(ordered)
        final = annotate_plan(plan.ops, set(), stats, graph=skewed_graph)
        assert math.isfinite(final) and final >= 0
        for op in plan.ops:
            assert op.est_rows is not None and op.est_rows >= 0
            assert op.access_path
        # Annotated explain carries the access path and the estimate.
        assert "via " in plan.explain()

    def test_trace_decisions_replays_order(self, skewed_graph):
        stats = GraphStatistics.gather(skewed_graph)
        conditions = conditions_of('Big(x), x -> "v" -> w, w = 3')
        optimizer = get_optimizer("cost")
        registry = default_registry()
        ordered = optimizer.order(conditions, set(), skewed_graph,
                                  registry, stats)
        decisions = trace_decisions(ordered, set(), stats, skewed_graph,
                                    registry, optimizer=optimizer)
        assert len(decisions) == len(ordered)
        for step, decision in enumerate(decisions, start=1):
            assert decision.step == step
            assert any(c["chosen"] for c in decision.candidates)
            doc = decision.to_dict()
            assert {"step", "chosen", "est_rows", "candidates"} <= set(doc)
