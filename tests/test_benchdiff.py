"""The benchmark regression gate (repro.obs.benchdiff, repro bench)."""

import json

import pytest

from repro.cli import main
from repro.obs.benchdiff import (
    BenchComparison,
    MetricDelta,
    compare_documents,
    load_document,
)


def _doc(**metrics):
    return {"bench": "core", "schema": 1, "metrics": metrics}


class TestMetricDelta:
    def test_pct(self):
        assert MetricDelta("m", 0.1, 0.2).pct == pytest.approx(100.0)
        assert MetricDelta("m", 0.2, 0.1).pct == pytest.approx(-50.0)
        assert MetricDelta("m", 0.0, 0.1).pct is None

    def test_regressed(self):
        assert MetricDelta("m", 0.1, 0.2).regressed(25.0)
        assert not MetricDelta("m", 0.1, 0.12).regressed(25.0)
        assert not MetricDelta("m", 0.0, 9.9).regressed(25.0)


class TestCompareDocuments:
    def test_synthetic_2x_regression_fails_default(self):
        old = _doc(full_build_p50_s=0.1, full_build_count=5)
        new = _doc(full_build_p50_s=0.2, full_build_count=5)
        comparison = compare_documents(old, new)
        assert not comparison.ok
        assert [d.name for d in comparison.regressions] == \
            ["full_build_p50_s"]
        assert "REGRESSION" in comparison.render()

    def test_generous_threshold_passes(self):
        old = _doc(full_build_p50_s=0.1)
        new = _doc(full_build_p50_s=0.2)
        assert compare_documents(old, new, max_regress_pct=150.0).ok

    def test_improvement_and_noise_pass(self):
        old = _doc(a_p50_s=0.1, b_p50_s=0.1)
        new = _doc(a_p50_s=0.05, b_p50_s=0.11)
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert "ok" in comparison.render().splitlines()[-1]

    def test_counts_not_gated(self):
        old = _doc(a_p50_s=0.1, a_count=5)
        new = _doc(a_p50_s=0.1, a_count=500)  # counts may change freely
        comparison = compare_documents(old, new)
        assert [d.name for d in comparison.deltas] == ["a_p50_s"]

    def test_zero_count_metric_skipped_not_gated(self):
        # A recorded 0.0 whose *_count companion is 0 never ran — a
        # huge "regression" against it is absence, not a slowdown.
        old = _doc(a_p50_s=0.0, a_count=0, b_p50_s=0.1, b_count=3)
        new = _doc(a_p50_s=5.0, a_count=4, b_p50_s=0.1, b_count=3)
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert comparison.skipped == ["a_p50_s"]
        assert [d.name for d in comparison.deltas] == ["b_p50_s"]
        assert "never ran on one side" in comparison.render()

    def test_zero_count_on_new_side_also_skips(self):
        old = _doc(a_p50_s=0.1, a_count=5)
        new = _doc(a_p50_s=0.0, a_count=0)
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert comparison.skipped == ["a_p50_s"]

    def test_zero_baseline_without_count_still_not_gated(self):
        # No companion count: nothing proves absence, but a zero
        # baseline has no percentage either.
        old = _doc(a_p50_s=0.0)
        new = _doc(a_p50_s=9.9)
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert comparison.skipped == []
        assert comparison.deltas[0].pct is None

    def test_one_sided_metrics_reported_not_gated(self):
        old = _doc(gone_p50_s=0.1, stays_p50_s=0.1)
        new = _doc(stays_p50_s=0.1, fresh_p50_s=99.0)
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert comparison.only_old == ["gone_p50_s"]
        assert comparison.only_new == ["fresh_p50_s"]
        rendered = comparison.render()
        assert "missing from NEW" in rendered
        assert "new metric" in rendered

    def test_empty_documents(self):
        comparison = compare_documents(_doc(), _doc())
        assert comparison.ok
        assert "no comparable metrics" in comparison.render()


class TestLoadDocument:
    def test_valid(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_doc(a_p50_s=0.1)))
        assert load_document(str(path))["metrics"]["a_p50_s"] == 0.1

    def test_rejects_non_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_document(str(path))

    def test_committed_baseline_is_loadable(self):
        import os
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        document = load_document(os.path.join(root, "BENCH_core.json"))
        assert any(name.endswith("_p50_s")
                   for name in document["metrics"])


class TestBenchCompareCLI:
    def _write(self, tmp_path, name, **metrics):
        path = tmp_path / name
        path.write_text(json.dumps(_doc(**metrics)))
        return str(path)

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", full_build_p50_s=0.1)
        new = self._write(tmp_path, "new.json", full_build_p50_s=0.2)
        assert main(["bench", "compare", old, new]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "full_build_p50_s" in out

    def test_threshold_flag(self, tmp_path):
        old = self._write(tmp_path, "old.json", full_build_p50_s=0.1)
        new = self._write(tmp_path, "new.json", full_build_p50_s=0.2)
        assert main(["bench", "compare", old, new,
                     "--max-regress-pct", "150"]) == 0

    def test_identical_documents_pass(self, tmp_path):
        old = self._write(tmp_path, "old.json", full_build_p50_s=0.1)
        new = self._write(tmp_path, "new.json", full_build_p50_s=0.1)
        assert main(["bench", "compare", old, new]) == 0

    def test_missing_file_exits_2(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", a_p50_s=0.1)
        assert main(["bench", "compare", old,
                     str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        old = self._write(tmp_path, "old.json", a_p50_s=0.1)
        assert main(["bench", "compare", old, str(bad)]) == 2
        assert "error" in capsys.readouterr().err
