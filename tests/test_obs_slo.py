"""SLOs, burn-rate alerting and the canary (repro.obs.slo) plus the
windowed time-series substrate they read (WindowedSeries)."""

import math
import time

import pytest

from repro import obs
from repro.obs.metrics import (
    DEFAULT_WINDOW_RETENTION,
    DEFAULT_WINDOW_STEP,
    MetricsRegistry,
    WindowedSeries,
)
from repro.obs.slo import (
    DEFAULT_PAIRS,
    VIOLATION_BURN,
    AlertRule,
    BurnRatePair,
    CanaryProber,
    SLO,
    SLOEvaluator,
    check_document,
    default_slos,
    get_slo_evaluator,
    load_slo_config,
    set_slo_evaluator,
)
from repro.site import DynamicSiteServer
from repro.sites.homepage import FIG3_QUERY, fig2_data, fig7_templates


@pytest.fixture(autouse=True)
def _clean_globals():
    obs.disable()
    set_slo_evaluator(None)
    yield
    set_slo_evaluator(None)
    obs.disable()


#: A pair short enough that unit tests can walk through burn/recover
#: cycles with 1-second ticks.
FAST_PAIR = BurnRatePair(long_s=8.0, short_s=2.0, factor=10.0,
                         severity="page")


def availability_slo(**overrides) -> SLO:
    settings = dict(name="avail", kind="availability", target=0.99,
                    window_s=60.0, total_metric="req", bad_metric="err")
    settings.update(overrides)
    return SLO(**settings)


class TestWindowedSeries:
    def test_bucket_alignment_and_replacement(self):
        series = WindowedSeries(MetricsRegistry(), step=10.0,
                                retention=100.0)
        assert series.sample(now=105.0) == 100.0
        # A second sample inside the same bucket replaces, not appends.
        assert series.sample(now=107.0) == 100.0
        assert len(series) == 1
        assert series.sample(now=112.0) == 110.0
        assert len(series) == 2
        assert series.coverage() == 10.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WindowedSeries(MetricsRegistry(), step=0.0)
        with pytest.raises(ValueError):
            WindowedSeries(MetricsRegistry(), step=10.0, retention=5.0)

    def test_increase_and_rate(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        registry.counter("req").inc(5)
        series.sample(now=100.0)
        registry.counter("req").inc(7)
        series.sample(now=110.0)
        assert series.increase("req", 10.0) == 7
        assert series.rate("req", 10.0) == pytest.approx(0.7)

    def test_window_clips_to_retained_history(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        series.sample(now=100.0)
        registry.counter("req").inc(4)
        series.sample(now=105.0)
        # Asking for the last hour of a 5-second-old series answers
        # over the 5 seconds that exist.
        assert series.increase("req", 3600.0) == 4
        assert series.rate("req", 3600.0) == pytest.approx(0.8)

    def test_under_two_samples_means_no_data(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        assert series.increase("req", 60.0) is None
        registry.counter("req").inc()
        series.sample(now=100.0)
        assert series.increase("req", 60.0) is None
        assert series.rate("req", 60.0) is None
        assert series.quantile("lat", 0.5, 60.0) is None
        assert series.fraction_below("lat", 0.25, 60.0) is None

    def test_unknown_metric_is_none(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        series.sample(now=100.0)
        series.sample(now=101.0)
        assert series.increase("nope", 60.0) is None

    def test_counter_reset_uses_newer_value(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        registry.counter("req").inc(100)
        series.sample(now=100.0)
        registry.counter("req").value = 3  # process restarted
        series.sample(now=101.0)
        assert series.increase("req", 60.0) == 3

    def test_histogram_increase_falls_back_to_count(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        series.sample(now=100.0)
        for _ in range(6):
            registry.histogram("lat").observe(0.01)
        series.sample(now=101.0)
        assert series.increase("lat", 60.0) == 6

    def test_windowed_quantile_ignores_older_observations(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        series.sample(now=100.0)
        # An early slow period...
        for _ in range(100):
            registry.histogram("lat").observe(2.0)
        series.sample(now=150.0)
        # ...then a fast recent one.
        for _ in range(100):
            registry.histogram("lat").observe(0.01)
        series.sample(now=151.0)
        p50 = series.quantile("lat", 0.5, 1.5)
        assert p50 is not None and p50 < 0.05
        # The lifetime window still sees the slow half.
        lifetime = series.quantile("lat", 0.9, 3600.0)
        assert lifetime is not None and lifetime > 1.0

    def test_fraction_below_interpolates(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        series.sample(now=100.0)
        for _ in range(99):
            registry.histogram("lat").observe(0.01)
        registry.histogram("lat").observe(5.0)
        series.sample(now=101.0)
        good, total = series.fraction_below("lat", 0.25, 60.0)
        assert total == 100
        assert good == pytest.approx(99.0)
        # Threshold at/past the last finite bound: everything is below.
        good, total = series.fraction_below("lat", 1e9, 60.0)
        assert (good, total) == (100.0, 100.0)
        # Non-positive threshold: nothing is.
        good, total = series.fraction_below("lat", 0.0, 60.0)
        assert (good, total) == (0.0, 100.0)

    def test_quantile_range_checked(self):
        series = WindowedSeries(MetricsRegistry(), step=1.0,
                                retention=60.0)
        with pytest.raises(ValueError):
            series.quantile("lat", 1.5, 60.0)
        with pytest.raises(ValueError):
            series.quantile("lat", -0.1, 60.0)

    def test_gauge_last(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        assert series.gauge_last("g") is None
        registry.gauge("g").set(7.5)
        series.sample(now=100.0)
        assert series.gauge_last("g") == 7.5

    def test_ring_is_bounded(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=10.0)
        for tick in range(100):
            series.sample(now=float(tick))
        assert len(series) == 11  # retention/step + 1
        assert series.coverage() == 10.0

    def test_from_document(self):
        document = {
            "counters": {"req": 200, "err": 10},
            "histograms": {"lat": {
                "count": 4, "sum": 0.08,
                "buckets": [[0.1, 4], ["+Inf", 4]],
            }},
        }
        series = WindowedSeries.from_document(document, 3600.0)
        assert series.increase("req", 3600.0) == 200
        assert series.increase("err", 3600.0) == 10
        good, total = series.fraction_below("lat", 0.25, 3600.0)
        assert (good, total) == (4.0, 4.0)
        with pytest.raises(ValueError):
            WindowedSeries.from_document(document, 0.0)

    def test_defaults_cover_the_slow_burn_window(self):
        assert DEFAULT_WINDOW_RETENTION >= 6 * 3600.0
        assert DEFAULT_WINDOW_STEP > 0


class TestSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="weird", target=0.99)
        with pytest.raises(ValueError):
            availability_slo(target=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", kind="availability", target=0.99)
        with pytest.raises(ValueError):
            SLO(name="x", kind="latency", target=0.99,
                latency_metric="lat")  # threshold missing

    def test_budget_and_describe(self):
        slo = availability_slo()
        assert slo.budget == pytest.approx(0.01)
        assert "99% of req good" in slo.describe()
        lat = SLO(name="lat", kind="latency", target=0.999,
                  latency_metric="lat_s", threshold_s=0.25)
        assert "lat_s <= 250 ms" in lat.describe()
        assert lat.as_dict()["objective"] == lat.describe()

    def test_availability_bad_ratio(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        slo = availability_slo()
        series.sample(now=100.0)
        assert slo.bad_ratio(series, 60.0) is None  # one sample
        registry.counter("req").inc(100)
        registry.counter("err").inc(5)
        series.sample(now=101.0)
        assert slo.bad_ratio(series, 60.0) == pytest.approx(0.05)
        assert slo.burn_rate(series, 60.0) == pytest.approx(5.0)

    def test_missing_bad_counter_is_healthy(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        series.sample(now=100.0)
        registry.counter("req").inc(10)
        series.sample(now=101.0)
        assert availability_slo().bad_ratio(series, 60.0) == 0.0

    def test_latency_bad_ratio(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        slo = SLO(name="lat", kind="latency", target=0.99,
                  latency_metric="lat_s", threshold_s=0.25)
        series.sample(now=100.0)
        for _ in range(90):
            registry.histogram("lat_s").observe(0.01)
        for _ in range(10):
            registry.histogram("lat_s").observe(5.0)
        series.sample(now=101.0)
        assert slo.bad_ratio(series, 60.0) == pytest.approx(0.1)
        assert slo.burn_rate(series, 60.0) == pytest.approx(10.0)


class TestAlertRule:
    def _burning_tick(self, registry, series, rule, now,
                      good=10, bad=10):
        registry.counter("req").inc(good + bad)
        if bad:
            registry.counter("err").inc(bad)
        series.sample(now)
        return rule.step(series, now)

    def test_pending_then_firing_within_two_ticks(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        rule = AlertRule(availability_slo(), FAST_PAIR, for_ticks=2)
        series.sample(100.0)
        assert rule.step(series, 100.0) is None  # no data yet
        assert self._burning_tick(registry, series, rule,
                                  101.0) == "pending"
        assert rule.state == "pending"
        assert rule.since == 101.0
        assert self._burning_tick(registry, series, rule,
                                  102.0) == "firing"
        assert rule.state == "firing"
        # Staying bad: no fresh transition.
        assert self._burning_tick(registry, series, rule,
                                  103.0) is None
        assert rule.state == "firing"
        assert rule.short_burn >= FAST_PAIR.factor
        assert rule.long_burn >= FAST_PAIR.factor

    def test_pending_clears_on_one_quiet_tick(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        rule = AlertRule(availability_slo(), FAST_PAIR, for_ticks=3)
        series.sample(100.0)
        rule.step(series, 100.0)
        assert self._burning_tick(registry, series, rule,
                                  101.0) == "pending"
        # A blip that recovers before for_ticks never notifies; one
        # quiet short window is enough to forget it.
        for now in (102.0, 103.0, 104.0):
            transition = self._burning_tick(registry, series, rule,
                                            now, good=100, bad=0)
        assert transition is None
        assert rule.state == "ok"

    def test_firing_resolves_after_clear_ticks(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        rule = AlertRule(availability_slo(), FAST_PAIR,
                         for_ticks=2, clear_ticks=2)
        series.sample(100.0)
        rule.step(series, 100.0)
        now = 101.0
        while rule.state != "firing":
            self._burning_tick(registry, series, rule, now)
            now += 1.0
        # Recover long enough that both windows go quiet (the long
        # window clips forward past the bad period as time advances).
        transitions = []
        for _ in range(12):
            transitions.append(self._burning_tick(
                registry, series, rule, now, good=1000, bad=0))
            now += 1.0
        assert "resolved" in transitions
        assert rule.state == "ok"
        assert rule.since is None

    def test_requires_both_windows_burning(self):
        registry = MetricsRegistry()
        series = WindowedSeries(registry, step=1.0, retention=60.0)
        rule = AlertRule(availability_slo(), FAST_PAIR)
        series.sample(100.0)
        rule.step(series, 100.0)
        # One terrible tick...
        self._burning_tick(registry, series, rule, 101.0)
        # ...followed by clean traffic: the short window recovers and
        # the rule must not keep climbing toward firing.
        for now in (102.0, 103.0, 104.0):
            self._burning_tick(registry, series, rule, now,
                               good=10000, bad=0)
        assert rule.state == "ok"

    def test_as_dict_names_the_pair(self):
        rule = AlertRule(availability_slo(), FAST_PAIR)
        doc = rule.as_dict()
        assert doc["name"] == "avail:page"
        assert doc["state"] == "ok"
        assert doc["factor"] == FAST_PAIR.factor
        assert doc["long_window_s"] == FAST_PAIR.long_s


class TestSLOEvaluator:
    def _evaluator(self, recorder, **overrides):
        settings = dict(slos=[availability_slo(window_s=8.0)],
                        step=1.0, pairs=(FAST_PAIR,), for_ticks=2,
                        clear_ticks=2)
        settings.update(overrides)
        return SLOEvaluator(recorder, **settings)

    def test_full_alert_lifecycle(self):
        recorder = obs.TraceRecorder()
        evaluator = self._evaluator(recorder)
        metrics = recorder.metrics
        evaluator.evaluate(now=100.0)
        # One sample: no data, no gauges, nothing fires.
        assert evaluator.worst() is None
        assert metrics.gauge("alerts_firing").value == 0
        assert "slo.burn_rate.avail" not in metrics.as_dict()["gauges"]

        for now in (101.0, 102.0):
            metrics.counter("req").inc(20)
            metrics.counter("err").inc(10)
            evaluator.evaluate(now=now)
        assert [r.state for r in evaluator.rules] == ["firing"]
        assert metrics.gauge("alerts_firing").value == 1
        assert evaluator.firing()[0].name == "avail:page"
        name, burn = evaluator.worst()
        assert name == "avail" and burn >= FAST_PAIR.factor
        gauges = metrics.as_dict()["gauges"]
        assert gauges["slo.burn_rate.avail"] == pytest.approx(50.0)
        assert gauges["slo.compliance.avail"] == pytest.approx(0.5)
        assert recorder.events.records("warning", name="alert.pending")
        firing_events = recorder.events.records(
            "error", name="alert.firing")
        assert firing_events
        assert firing_events[0].attributes["slo"] == "avail"

        now = 103.0
        for _ in range(12):
            metrics.counter("req").inc(1000)
            evaluator.evaluate(now=now)
            now += 1.0
        assert evaluator.firing() == []
        assert metrics.gauge("alerts_firing").value == 0
        assert recorder.events.records("info", name="alert.resolved")

    def test_snapshot_shape(self):
        recorder = obs.TraceRecorder()
        evaluator = self._evaluator(recorder)
        recorder.metrics.counter("req").inc(50)
        evaluator.evaluate(now=100.0)
        recorder.metrics.counter("req").inc(50)
        evaluator.evaluate(now=101.0)
        snapshot = evaluator.snapshot()
        assert snapshot["ticks"] == 2
        assert snapshot["last_tick"] == 101.0
        assert snapshot["step_s"] == 1.0
        assert snapshot["firing"] == 0
        (slo_entry,) = snapshot["slos"]
        assert slo_entry["name"] == "avail"
        assert slo_entry["violated"] is False
        assert slo_entry["compliance"] == pytest.approx(1.0)
        (alert,) = snapshot["alerts"]
        assert alert["state"] == "ok"

    def test_retention_covers_longest_window(self):
        recorder = obs.TraceRecorder()
        evaluator = SLOEvaluator(recorder, slos=default_slos())
        longest = max(p.long_s for p in DEFAULT_PAIRS)
        assert evaluator.series.retention >= longest
        # 4 stock SLOs x 2 stock pairs.
        assert len(evaluator.rules) == 8

    def test_background_loop_ticks(self):
        recorder = obs.TraceRecorder()
        evaluator = self._evaluator(recorder)
        evaluator.start_background(interval=0.01)
        try:
            deadline = time.time() + 2.0
            while evaluator.ticks == 0 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            evaluator.stop()
        assert evaluator.ticks > 0
        # stop() is idempotent and restartable.
        evaluator.stop()

    def test_global_install(self):
        assert get_slo_evaluator() is None
        evaluator = self._evaluator(obs.TraceRecorder())
        set_slo_evaluator(evaluator)
        assert get_slo_evaluator() is evaluator
        set_slo_evaluator(None)
        assert get_slo_evaluator() is None


class TestCanaryProber:
    def _server(self):
        return DynamicSiteServer(FIG3_QUERY, fig2_data(),
                                 fig7_templates())

    def test_successful_probe_feeds_canary_series(self):
        # The server instruments the *global* recorder, so probe under
        # a recording context to see server.* alongside canary.*.
        with obs.recording() as recorder:
            prober = CanaryProber(self._server(), recorder,
                                  interval=60.0)
            assert prober.probe() is True
        metrics = recorder.metrics.as_dict()
        assert metrics["counters"]["canary.probes"] == 1
        assert "canary.failures" not in metrics["counters"]
        assert metrics["histograms"]["canary.probe_seconds"]["count"] \
            == 1
        # The probe went through the real request path.
        assert metrics["counters"]["server.requests"] == 1
        assert prober.as_dict() == {
            "interval_s": 60.0, "probes": 1, "failures": 0,
            "running": False}

    def test_probe_ticks_the_evaluator(self):
        recorder = obs.TraceRecorder()
        evaluator = SLOEvaluator(recorder, slos=default_slos(),
                                 step=0.05)
        prober = CanaryProber(self._server(), recorder,
                              evaluator=evaluator)
        prober.probe()
        assert evaluator.ticks == 1

    def test_failed_probe_counts_and_emits(self):
        class Rootless:
            def roots(self):
                return []

        recorder = obs.TraceRecorder()
        prober = CanaryProber(Rootless(), recorder)
        assert prober.probe() is False
        metrics = recorder.metrics.as_dict()
        assert metrics["counters"]["canary.probes"] == 1
        assert metrics["counters"]["canary.failures"] == 1
        (event,) = recorder.events.records("warning",
                                           name="canary.failed")
        assert "no root pages" in event.message

    def test_background_start_stop(self):
        recorder = obs.TraceRecorder()
        prober = CanaryProber(self._server(), recorder, interval=0.02)
        prober.start()
        try:
            deadline = time.time() + 2.0
            while prober.probes == 0 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            prober.stop()
        assert prober.probes > 0
        assert prober.failures == 0
        assert prober.as_dict()["running"] is False


class TestConfig:
    def test_defaults(self):
        slos = default_slos()
        assert [s.name for s in slos] == [
            "server-availability", "server-latency",
            "canary-availability", "canary-latency"]
        latency = slos[1]
        assert latency.threshold_s == 0.25
        assert latency.latency_metric == "server.request_seconds"

    def test_load_slo_config(self, tmp_path):
        config_path = tmp_path / "slo.toml"
        config_path.write_text("""
step_s = 0.5

[alerts]
for_ticks = 3
clear_ticks = 4

[canary]
interval_s = 1.5

[[slo]]
name = "lat"
kind = "latency"
metric = "server.request_seconds"
threshold_ms = 100
target = 0.95
window_s = 120

[[slo]]
name = "avail"
kind = "availability"
total = "server.requests"
bad = "server.errors"
target = 0.999
""")
        config = load_slo_config(str(config_path))
        assert config.step_s == 0.5
        assert config.for_ticks == 3
        assert config.clear_ticks == 4
        assert config.canary_interval_s == 1.5
        assert [s.name for s in config.slos] == ["lat", "avail"]
        lat, avail = config.slos
        assert lat.threshold_s == pytest.approx(0.1)
        assert lat.window_s == 120.0
        assert avail.target == 0.999
        assert avail.bad_metric == "server.errors"

    def test_empty_config_keeps_defaults(self, tmp_path):
        config_path = tmp_path / "slo.toml"
        config_path.write_text("")
        config = load_slo_config(str(config_path))
        assert [s.name for s in config.slos] == [
            s.name for s in default_slos()]
        assert config.step_s == DEFAULT_WINDOW_STEP

    def test_threshold_s_overrides_ms(self, tmp_path):
        config_path = tmp_path / "slo.toml"
        config_path.write_text("""
[[slo]]
name = "lat"
kind = "latency"
metric = "m"
threshold_ms = 100
threshold_s = 2.0
""")
        (slo,) = load_slo_config(str(config_path)).slos
        assert slo.threshold_s == 2.0

    def test_invalid_slo_table_raises(self, tmp_path):
        config_path = tmp_path / "slo.toml"
        config_path.write_text("""
[[slo]]
name = "broken"
kind = "latency"
""")
        with pytest.raises(ValueError):
            load_slo_config(str(config_path))


class TestCheckDocument:
    def test_violated_availability(self):
        document = {"counters": {"req": 100, "err": 5}}
        (status,) = check_document([availability_slo()], document)
        assert status["violated"] is True
        assert status["burn_rate"] == pytest.approx(5.0)
        assert status["compliance"] == pytest.approx(0.95)

    def test_healthy_latency(self):
        document = {"histograms": {"lat_s": {
            "count": 100, "sum": 1.0,
            "buckets": [[0.1, 100], ["+Inf", 100]],
        }}}
        slo = SLO(name="lat", kind="latency", target=0.99,
                  latency_metric="lat_s", threshold_s=0.25)
        (status,) = check_document([slo], document)
        assert status["violated"] is False
        assert status["burn_rate"] == pytest.approx(0.0)

    def test_no_data_never_violates(self):
        (status,) = check_document([availability_slo()], {})
        assert status["violated"] is False
        assert status["burn_rate"] is None
        assert status["compliance"] is None

    def test_violation_threshold(self):
        # Past the budget (2% bad of a 99% target) violates...
        document = {"counters": {"req": 100, "err": 2}}
        (status,) = check_document([availability_slo()], document)
        assert status["burn_rate"] >= VIOLATION_BURN
        assert status["violated"] is True
        # ...comfortably under it does not.
        document = {"counters": {"req": 1000, "err": 1}}
        (status,) = check_document([availability_slo()], document)
        assert status["burn_rate"] < VIOLATION_BURN
        assert status["violated"] is False
