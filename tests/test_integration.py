"""Cross-module integration: the full Fig 1 architecture end to end."""

import os

import pytest

from repro.datagen import build_org_mediator
from repro.graph import Atom, Oid
from repro.repository import Repository, load_repository, save_repository
from repro.site import (
    DynamicSiteServer,
    ReachableFromRoot,
    Verifier,
    Website,
    build_site_schema,
)
from repro.sites.homepage import FIG3_QUERY, fig7_templates
from repro.struql import QueryEngine
from repro.struql.rewriter import run_pipeline
from repro.wrappers import BibTexWrapper


class TestFullPipeline:
    """Wrapper -> mediator -> repository -> query -> templates -> HTML."""

    def test_org_site_end_to_end(self, tmp_path):
        mediator = build_org_mediator(people=30, projects=6,
                                      publications=10)
        repo = Repository("org")
        mediator.store_warehouse(repo)
        from repro.sites.org import ORG_QUERY, org_templates
        data = repo.graph("data")
        data.name = "ORGDATA"
        repo.store(data)
        engine = QueryEngine()
        result = engine.run(ORG_QUERY, repo)
        assert repo.has_graph("OrgSite")
        site = Website(data, ORG_QUERY, org_templates())
        report = site.verify([ReachableFromRoot("RootPage")],
                             schema_level=True)
        assert report.ok
        out_dir = tmp_path / "www"
        written = site.generate(str(out_dir))
        assert len(written) > 30
        # Spot-check one person page body.
        person = next(n for n in site.site_graph.nodes()
                      if n.skolem_fn == "PersonPage")
        html = open(written[person]).read()
        assert "Email" in html

    def test_repository_persistence_roundtrip(self, tmp_path,
                                              fig2_graph):
        repo = Repository("hp")
        repo.store(fig2_graph)
        QueryEngine().run(FIG3_QUERY, repo)
        save_repository(repo, str(tmp_path))
        restored = load_repository(str(tmp_path))
        site_graph = restored.graph("HomePage")
        root = Oid.skolem("RootPage", ())
        assert len(site_graph.get(root, "YearPage")) == 2
        # The restored site graph renders identically.
        from repro.templates import HtmlGenerator
        original = HtmlGenerator(repo.graph("HomePage"),
                                 fig7_templates()).render(root)
        again = HtmlGenerator(site_graph, fig7_templates()).render(root)
        assert original == again

    def test_multi_query_site_with_navbar(self, fig2_graph, tmp_path):
        """The suciu-site pattern: compose queries, then render."""
        repo = Repository()
        repo.store(fig2_graph)
        step1 = FIG3_QUERY
        step2 = """
        input HomePage
        create NavBar()
        { where TopPages(p)
          link NavBar() -> "entry" -> p }
        output HomePage2
        """
        # First mark the root as a top page via a tiny bridging query.
        bridge = """
        input HomePage
        where x -> "YearPage" -> y
        collect TopPages(x)
        output HomePage
        """
        run_pipeline([step1, bridge, step2], repo)
        final = repo.graph("HomePage2")
        nav = Oid.skolem("NavBar", ())
        assert len(final.get(nav, "entry")) == 1

    def test_dynamic_server_over_wrapped_bibtex(self):
        bib = """
        @article{k1, title={One}, author={A}, year=1995,
                 abstract={abstracts/k1.txt}}
        @inproceedings{k2, title={Two}, author={B and C}, year=1996,
                 abstract={abstracts/k2.txt}}
        """
        data = BibTexWrapper().wrap(bib, "BIBTEX")
        server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
        responses = server.crawl()
        assert all(r.status == 200 for r in responses)
        year_pages = [r for r in responses
                      if r.oid.skolem_fn == "YearPage"]
        assert len(year_pages) == 2

    def test_schema_guides_verification_before_build(self, fig3_query):
        """Static verification needs no data at all."""
        schema = build_site_schema(fig3_query)
        report = Verifier([ReachableFromRoot("RootPage")]).verify(
            schema=schema)
        assert report.ok


class TestFileLoader:
    def test_abstract_files_embed(self, fig2_graph, tmp_path):
        abstracts = {"abstracts/toplas97.txt": "We describe SLED...",
                     "abstracts/icde98.txt": "Graph schemas..."}
        site = Website(fig2_graph, FIG3_QUERY, fig7_templates(),
                       loader=abstracts.get)
        abstract_page = Oid.skolem("AbstractPage", (Oid("pub1"),))
        html = site.generator().render(abstract_page)
        assert "We describe SLED..." in html


class TestWebsiteEdges:
    def test_needs_at_least_one_query(self, fig2_graph):
        from repro.errors import SiteError
        with pytest.raises(SiteError):
            Website(fig2_graph, [])

    def test_build_is_idempotent(self, fig2_graph):
        from repro.sites.homepage import FIG3_QUERY
        site = Website(fig2_graph, FIG3_QUERY)
        first = site.site_graph
        site.build()
        assert site.site_graph is first

    def test_schema_by_index(self, fig2_graph):
        from repro.sites.homepage import FIG3_QUERY
        site = Website(fig2_graph, [FIG3_QUERY, """
            input HomePage
            create Nav()
            { where x -> "YearPage" -> y
              link Nav() -> "to" -> y }
            output Final
        """])
        first_schema = site.schema(0)
        last_schema = site.schema()
        assert "YearPage" in first_schema.nodes
        assert last_schema.nodes == ["Nav", "N_S"]

    def test_metrics_count_all_queries(self, fig2_graph):
        from repro.sites.homepage import FIG3_QUERY
        single = Website(fig2_graph.copy("BIBTEX"), FIG3_QUERY)
        double = Website(fig2_graph.copy("BIBTEX"), [FIG3_QUERY, """
            input HomePage
            create Nav()
            { where x -> "YearPage" -> y
              link Nav() -> "to" -> y }
            output Final
        """])
        assert double.metrics().query_lines > \
            single.metrics().query_lines
        assert double.metrics().link_clauses == \
            single.metrics().link_clauses + 1
