"""Query observability: fingerprints, the plan registry, EXPLAIN."""

import pytest

from repro import obs
from repro.graph import Atom, Graph, Oid
from repro.obs.queries import (
    MISESTIMATE_RATIO,
    QueryStatsRegistry,
    explain_document,
    fingerprint,
    get_query_registry,
    misestimate_ratio,
    misestimates_of,
    normalize_query,
    render_explain,
    set_query_registry,
)
from repro.struql import QueryEngine, parse_query


@pytest.fixture(autouse=True)
def _fresh_state():
    """Each test gets a private registry and a no-op recorder."""
    obs.disable()
    previous = get_query_registry()
    set_query_registry(QueryStatsRegistry())
    yield
    set_query_registry(previous)
    obs.disable()


class TestFingerprint:
    def test_literals_are_masked(self):
        assert normalize_query('x = "alpha",  y =  42') == 'x = "?", y = ?'
        assert normalize_query('x = "beta", y = 3.14') == 'x = "?", y = ?'

    def test_escaped_quote_inside_literal(self):
        assert normalize_query(r'x = "a \" b"') == 'x = "?"'

    def test_literal_type_does_not_collide(self):
        # `x = "1"` (string) and `x = 1` (number) evaluate differently;
        # masking must keep them apart (the quotes carry the type).
        assert normalize_query('where C(x), x = "1"') != \
            normalize_query("where C(x), x = 1")
        assert fingerprint('where C(x), x = "1"') != \
            fingerprint("where C(x), x = 1")
        # Same-type literals still collapse into one fingerprint.
        assert fingerprint('where C(x), x = "1"') == \
            fingerprint('where C(x), x = "2"')
        assert fingerprint("where C(x), x = 1") == \
            fingerprint("where C(x), x = 2")

    def test_same_shape_same_fingerprint(self):
        assert fingerprint('where C(x), x = "a"') == \
            fingerprint('where  C(x),   x = "zz"')
        assert fingerprint('where C(x), x = 1') != \
            fingerprint('where D(x), x = 1')

    def test_parsed_query_uses_source_text(self):
        text = """
            input G
            where Root(x), x -> "a" -> y
            collect Out(y)
            output O
        """
        query = parse_query(text)
        assert fingerprint(query) == fingerprint(text)


class TestRegistry:
    def test_aggregates_per_fingerprint(self):
        registry = QueryStatsRegistry()
        registry.observe("where C(x)", seconds=0.010, rows=5,
                         plan="scan", optimizer="cost")
        entry = registry.observe("where  C(x)", seconds=0.030, rows=7,
                                 plan="scan", optimizer="cost")
        assert len(registry) == 1
        assert entry.count == 2
        assert entry.rows_total == 12
        assert entry.last_rows == 7
        assert entry.p50_seconds > 0
        assert entry.p95_seconds >= entry.p50_seconds

    def test_lru_bound_and_eviction_counter(self):
        registry = QueryStatsRegistry(max_fingerprints=3)
        for i in range(5):
            registry.observe(f"where C{i}(x)", seconds=0.001)
        assert len(registry) == 3
        assert registry.evicted == 2
        assert registry.observed == 5
        # Oldest fingerprints are gone; recent ones survive.
        assert registry.get(fingerprint("where C0(x)")) is None
        assert registry.get(fingerprint("where C4(x)")) is not None

    def test_reobserving_refreshes_lru_position(self):
        registry = QueryStatsRegistry(max_fingerprints=2)
        registry.observe("where A(x)", seconds=0.001)
        registry.observe("where B(x)", seconds=0.001)
        registry.observe("where A(x)", seconds=0.001)  # A is now newest
        registry.observe("where C(x)", seconds=0.001)  # evicts B
        assert registry.get(fingerprint("where A(x)")) is not None
        assert registry.get(fingerprint("where B(x)")) is None

    def test_slow_query_event_and_metrics(self):
        with obs.recording() as rec:
            registry = QueryStatsRegistry(slow_seconds=0.0)
            entry = registry.observe("where C(x)", seconds=0.002,
                                     rows=3, optimizer="heuristic")
        assert entry.slow == 1
        events = rec.events.records(name="struql.slow_query")
        assert len(events) == 1
        assert events[0].level == "warning"
        assert events[0].attributes["fingerprint"] == entry.fingerprint
        metrics = rec.metrics.as_dict()
        assert metrics["counters"]["struql.slow_queries"] == 1
        assert metrics["counters"]["struql.queries_observed"] == 1
        assert metrics["gauges"]["struql.query_fingerprints"] == 1

    def test_fast_query_is_not_slow(self):
        with obs.recording() as rec:
            registry = QueryStatsRegistry(slow_seconds=10.0)
            entry = registry.observe("where C(x)", seconds=0.001)
        assert entry.slow == 0
        assert rec.events.records(name="struql.slow_query") == []

    def test_snapshot_sorted_and_limited(self):
        registry = QueryStatsRegistry()
        registry.observe("where Fast(x)", seconds=0.001)
        registry.observe("where Slow(x)", seconds=0.100)
        snap = registry.snapshot()
        assert snap["fingerprints"] == 2
        assert snap["queries"][0]["text"].startswith("where Slow")
        limited = registry.snapshot(limit=1)
        assert len(limited["queries"]) == 1
        assert limited["max_fingerprints"] == registry.max_fingerprints

    def test_clear(self):
        registry = QueryStatsRegistry(max_fingerprints=1)
        registry.observe("where A(x)", seconds=0.001)
        registry.observe("where B(x)", seconds=0.001)
        registry.clear()
        assert len(registry) == 0
        assert registry.evicted == 0
        assert registry.observed == 0


class TestMisestimateRatio:
    def test_symmetric_and_clamped(self):
        assert misestimate_ratio(None, 100) == 1.0
        assert misestimate_ratio(10, 10) == 1.0
        assert misestimate_ratio(100, 10) == pytest.approx(10.0)
        assert misestimate_ratio(10, 100) == pytest.approx(10.0)
        # Zero rows clamp to one instead of dividing by zero.
        assert misestimate_ratio(50, 0) == pytest.approx(50.0)
        assert misestimate_ratio(0, 0) == 1.0


def _skewed_graph(n: int = 100) -> Graph:
    """Every member of Big carries v=1, defeating the uniform-value
    selectivity guess — a deliberate misestimate factory."""
    graph = Graph("G")
    for i in range(n):
        node = Oid(f"n{i}")
        graph.add_to_collection("Big", node)
        graph.add_edge(node, "v", Atom.int(1))
        graph.add_edge(node, "w", Atom.int(i))
    return graph


MISEST_QUERY = """
    input G
    where Big(x), x -> "v" -> w, w = 1, w != 2
    collect Hit(x)
    output O
"""


class TestEngineIntegration:
    def test_evaluate_feeds_registry(self):
        engine = QueryEngine(optimizer="cost")
        result = engine.evaluate(MISEST_QUERY, _skewed_graph())
        assert result.fingerprint
        assert result.optimizer_name == "cost"
        entry = get_query_registry().get(result.fingerprint)
        assert entry is not None
        assert entry.count == 1
        assert entry.last_rows == result.total_bindings
        assert entry.last_optimizer == "cost"
        assert "member/filter" in entry.last_plan

    def test_misestimate_flagged_and_event_emitted(self):
        engine = QueryEngine(optimizer="cost")
        with obs.recording() as rec:
            result = engine.evaluate(MISEST_QUERY, _skewed_graph())
        flagged = misestimates_of(result)
        assert flagged, "skewed graph should trip the misestimate flag"
        assert all(f["ratio"] > MISESTIMATE_RATIO for f in flagged)
        events = rec.events.records(name="struql.misestimate")
        assert events and events[0].level == "warning"
        entry = get_query_registry().get(result.fingerprint)
        assert entry.misestimates >= 1

    def test_explain_analyze_rendering(self):
        engine = QueryEngine(optimizer="cost", decision_trace=True)
        result = engine.evaluate(MISEST_QUERY, _skewed_graph())
        text = result.explain_analyze()
        assert f"fingerprint={result.fingerprint}" in text
        assert "optimizer=cost" in text
        assert "est~" in text and "actual=" in text and "ms" in text
        assert "via " in text            # access path per operator
        assert "decisions:" in text
        assert "misestimates:" in text

    def test_op_profiles_and_access_paths(self):
        engine = QueryEngine(optimizer="cost")
        result = engine.evaluate(MISEST_QUERY, _skewed_graph())
        profiles = [p for t in result.traces for p in t.op_profiles]
        assert profiles
        for profile in profiles:
            assert profile.invocations == 1
            assert profile.seconds >= 0
            assert profile.rows_out >= 0
        assert any(p.access_path for p in profiles)
        doc_ops = [p.to_dict() for p in profiles]
        assert {"op", "rows_in", "rows_out", "seconds", "est_rows",
                "access_path", "misestimate"} <= set(doc_ops[0])

    def test_explain_document_shape(self):
        engine = QueryEngine(optimizer="cost", decision_trace=True)
        result = engine.evaluate(MISEST_QUERY, _skewed_graph())
        doc = explain_document(result, analyze=True)
        assert doc["analyze"] is True
        assert doc["fingerprint"] == result.fingerprint
        assert doc["blocks"]
        block = doc["blocks"][0]
        assert {"label", "plan", "estimated_rows", "decisions",
                "actual_rows", "seconds", "ops"} <= set(block)
        assert doc["summary"]["total_rows"] == result.total_bindings
        assert doc["misestimates"]

    def test_plan_only_does_not_execute(self):
        engine = QueryEngine(optimizer="cost", decision_trace=True)
        result = engine.plan_only(parse_query(MISEST_QUERY),
                                  _skewed_graph())
        assert result.traces
        for trace in result.traces:
            assert trace.executed is False
            assert trace.binding_rows == 0
            assert trace.estimated_rows is not None
        assert result.output.node_count == 0
        text = render_explain(result, analyze=False)
        assert "est~" in text
        # Plan-only never reports misestimates: nothing actually ran.
        assert misestimates_of(result) == []

    def test_registry_untouched_by_plan_only(self):
        engine = QueryEngine(optimizer="cost")
        engine.plan_only(parse_query(MISEST_QUERY), _skewed_graph())
        assert len(get_query_registry()) == 0
