"""Query rewriting: flattening, decomposition helpers, composition."""

import pytest

from repro.graph import Atom, Graph, Oid
from repro.repository import Repository
from repro.struql import QueryEngine, parse_query
from repro.struql.rewriter import (
    compose,
    creating_units,
    flatten,
    linking_units,
    run_pipeline,
)
from repro.sites.homepage import FIG3_QUERY


class TestFlatten:
    def test_unit_labels_match_fig5(self, fig3_query):
        labels = [u.label for u in flatten(fig3_query)]
        assert labels == ["true", "Q1", "Q1 ^ Q2", "Q1 ^ Q3"]

    def test_conditions_accumulate(self, fig3_query):
        units = flatten(fig3_query)
        q1 = next(u for u in units if u.label == "Q1")
        q12 = next(u for u in units if u.label == "Q1 ^ Q2")
        assert len(q12.conditions) == len(q1.conditions) + 1

    def test_depth_tracked(self, fig3_query):
        units = flatten(fig3_query)
        assert [u.depth for u in units] == [0, 1, 2, 2]

    def test_accepts_text(self):
        units = flatten("input G where A(x) create F(x) output O")
        assert len(units) == 1 and units[0].is_constructive

    def test_creating_units(self, fig3_query):
        units = flatten(fig3_query)
        hits = creating_units(units, "YearPage")
        assert [u.label for u in hits] == ["Q1 ^ Q2"]

    def test_linking_units(self, fig3_query):
        units = flatten(fig3_query)
        hits = linking_units(units, "RootPage")
        labels = {(unit.label, str(link.label)) for unit, link in hits}
        assert labels == {("true", '"AbstractsPage"'),
                          ("Q1 ^ Q2", '"YearPage"'),
                          ("Q1 ^ Q3", '"CategoryPage"')}


class TestCompose:
    @pytest.fixture
    def base(self) -> Graph:
        graph = Graph("Base")
        for name in ("a", "b"):
            oid = Oid(name)
            graph.add_to_collection("Items", oid)
            graph.add_edge(oid, "name", Atom.string(name))
        return graph

    STEP1 = """
        input Base
        where Items(x), x -> "name" -> n
        create Page(x)
        link Page(x) -> "name" -> n
        collect Pages(Page(x))
        output Mid
    """
    # The suciu-site idiom: copy the whole graph, adding a nav bar.
    STEP2 = """
        input Mid
        where Pages(p)
        create Nav(), Wrapped(p)
        link Wrapped(p) -> "content" -> p,
             Wrapped(p) -> "nav" -> Nav(),
             Nav() -> "home" -> Wrapped(p)
        collect Final(Wrapped(p))
        output Site
    """

    def test_pipeline_shares_skolems(self, base):
        result = compose([self.STEP1, self.STEP2], base)
        out = result.output
        assert out.name == "Site"
        wrapped = out.collection("Final")
        assert len(wrapped) == 2
        # Wrapped pages point at the *same* Page oids step 1 minted.
        content = out.get_one(wrapped[0], "content")
        assert content.skolem_fn == "Page"

    def test_empty_pipeline_rejected(self, base):
        with pytest.raises(ValueError):
            compose([], base)

    def test_run_pipeline_stores_intermediates(self, base):
        repo = Repository()
        repo.store(base)
        result = run_pipeline([self.STEP1, self.STEP2], repo)
        assert repo.has_graph("Mid") and repo.has_graph("Site")
        assert result.output is repo.graph("Site")

    def test_second_step_cannot_mutate_first_output_nodes(self, base):
        # Step 2's input nodes (created by step 1) are immutable in
        # step 2: link sources must be Skolem terms of step 2 — trying
        # to link from the old page identity is rejected by the runtime.
        from repro.errors import StruQLSemanticError
        bad_step2 = """
            input Mid
            where Pages(p)
            create Page(p)
            link Page(p) -> "extra" -> p
            output Site
        """
        # Page(p) where p is the Page(x) oid creates Page(Page(x)), a
        # fresh node, so this is legal...
        compose([self.STEP1, bad_step2], base)
        # ...but minting a Skolem identity that already names an input
        # node is the collision the runtime must refuse:
        engine = QueryEngine()
        mid = engine.evaluate(self.STEP1, base).output
        mid.add_node(Oid.skolem("Fresh", (Atom.string("a"),)))
        with pytest.raises(StruQLSemanticError):
            engine.evaluate("""
                input Mid
                where Pages(p), p -> "name" -> n
                create Fresh(n)
                link Fresh(n) -> "alias" -> p
                output Site2
            """, mid)
