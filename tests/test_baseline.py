"""The procedural (CGI-style) baseline used by benchmarks F8 and A5."""

from repro.baseline import (
    generate_homepage_site,
    generate_homepage_site_external,
    generate_news_site,
    generate_news_site_sports,
    source_lines,
)
from repro.datagen import generate_news_graph
from repro.sites.homepage import fig2_data


class TestHomepageBaseline:
    def test_produces_same_page_inventory_as_strudel(self):
        data = fig2_data()
        pages = generate_homepage_site(data)
        # index + 2 year + 3 category + abstracts + 2 per-abstract = 9,
        # matching the declarative site's page count.
        assert len(pages) == 9
        assert "index.html" in pages
        assert "year_1997.html" in pages

    def test_internal_has_postscript_links(self):
        pages = generate_homepage_site(fig2_data())
        assert 'HREF="papers/toplas97.ps.gz"' in pages["year_1997.html"]

    def test_external_drops_postscript(self):
        pages = generate_homepage_site_external(fig2_data())
        assert ".ps" not in pages["year_1997.html"]
        # Same inventory, different presentation.
        assert set(pages) == set(generate_homepage_site(fig2_data()))

    def test_escaping(self):
        data = fig2_data()
        from repro.graph import Atom, Oid
        data.add_edge(Oid("pub1"), "title", Atom.string("<script>"))
        pages = generate_homepage_site(data)
        assert "<script>" not in pages["abstracts.html"]


class TestNewsBaseline:
    def test_covers_sections_days_articles(self):
        data = generate_news_graph(40)
        pages = generate_news_site(data)
        assert "index.html" in pages
        assert any(name.startswith("sec_") for name in pages)
        assert any(name.startswith("day_") for name in pages)
        articles = [name for name in pages if name.startswith("art_")]
        assert len(articles) == 40

    def test_sports_version_is_filtered(self):
        data = generate_news_graph(60)
        general = generate_news_site(data)
        sports = generate_news_site_sports(data)
        general_articles = {n for n in general if n.startswith("art_")}
        sports_articles = {n for n in sports if n.startswith("art_")}
        assert sports_articles < general_articles
        assert sports_articles

    def test_related_links_rendered(self):
        data = generate_news_graph(40)
        pages = generate_news_site(data)
        assert any("Related stories" in html
                   for name, html in pages.items()
                   if name.startswith("art_"))


class TestSourceLines:
    def test_counts_nonblank_lines(self):
        def tiny():
            x = 1

            return x

        assert source_lines(tiny) == 3

    def test_sums_multiple_functions(self):
        def a():
            return 1

        def b():
            return 2

        assert source_lines(a, b) == source_lines(a) + source_lines(b)
