"""Source wrappers: BibTeX, relational, structured files, HTML, XML."""

import pytest

from repro.errors import WrapperError
from repro.graph import Atom, AtomType, Oid
from repro.wrappers import (
    BibTexWrapper,
    HtmlWrapper,
    RelationalWrapper,
    StructuredFileWrapper,
    XmlWrapper,
)

BIB = r"""
@string{toplas = "Transactions on Programming Languages"}

@article{ramsey97,
  title = {Specifying {Representations} of Machine Instructions},
  author = {Norman Ramsey and Mary Fernandez},
  journal = toplas,
  year = 1997,
  month = {May},
  abstract = {abstracts/toplas97.txt},
  postscript = {papers/toplas97.ps.gz},
  keywords = {Architecture Specifications, Programming Languages}
}

@inproceedings{fs98,
  title = "Optimizing Regular Path Expressions",
  author = "Mary Fernandez and Dan Suciu",
  booktitle = "Proc. of " # "ICDE",
  year = 1998
}

@comment{ this is ignored }
"""


class TestBibTex:
    @pytest.fixture
    def graph(self):
        return BibTexWrapper().wrap(BIB)

    def test_entries_in_collection(self, graph):
        assert graph.collection("Publications") == [Oid("ramsey97"),
                                                    Oid("fs98")]

    def test_authors_split(self, graph):
        authors = [str(a) for a in graph.get(Oid("ramsey97"), "author")]
        assert authors == ["Norman Ramsey", "Mary Fernandez"]

    def test_string_macro_expansion(self, graph):
        journal = graph.get_one(Oid("ramsey97"), "journal")
        assert str(journal) == "Transactions on Programming Languages"

    def test_concatenation(self, graph):
        assert str(graph.get_one(Oid("fs98"), "booktitle")) == \
            "Proc. of ICDE"

    def test_year_is_int(self, graph):
        assert graph.get_one(Oid("ramsey97"), "year") == Atom.int(1997)

    def test_file_fields_typed(self, graph):
        ps = graph.get_one(Oid("ramsey97"), "postscript")
        assert ps.type is AtomType.POSTSCRIPT_FILE
        abstract = graph.get_one(Oid("ramsey97"), "abstract")
        assert abstract.type is AtomType.TEXT_FILE

    def test_keywords_become_categories(self, graph):
        categories = [str(c) for c in graph.get(Oid("ramsey97"),
                                                "category")]
        assert categories == ["Architecture Specifications",
                              "Programming Languages"]

    def test_pub_type_recorded(self, graph):
        assert str(graph.get_one(Oid("ramsey97"), "pub-type")) == "article"
        assert str(graph.get_one(Oid("fs98"), "pub-type")) == \
            "inproceedings"

    def test_braces_stripped_in_titles(self, graph):
        title = str(graph.get_one(Oid("ramsey97"), "title"))
        assert "{" not in title and "Representations" in title

    def test_irregularity_preserved(self, graph):
        # The semistructured point: no month/journal on the second entry.
        assert graph.get_one(Oid("fs98"), "month") is None
        assert graph.get_one(Oid("fs98"), "journal") is None

    def test_unterminated_entry(self):
        with pytest.raises(WrapperError):
            BibTexWrapper().wrap("@article{x, title = {unclosed")

    def test_paren_delimited_entry(self):
        graph = BibTexWrapper().wrap("@article(k, year = 1990)")
        assert graph.get_one(Oid("k"), "year") == Atom.int(1990)


PEOPLE_CSV = """login,name,phone,org,projects
mff,Mary Fernandez,973-1111,org1,strudel;tangram
suciu,Dan Suciu,,org1,strudel
levy,Alon Levy,973-3333,org2,
"""

ORGS_CSV = """id,name
org1,Database Research
org2,AI Research
"""


class TestRelational:
    @pytest.fixture
    def graph(self):
        wrapper = RelationalWrapper(
            key_columns={"People": "login", "Orgs": "id"},
            foreign_keys={("People", "org"): "Orgs"})
        return wrapper.wrap_tables({"People": PEOPLE_CSV,
                                    "Orgs": ORGS_CSV})

    def test_rows_become_objects(self, graph):
        assert len(graph.collection("People")) == 3
        assert len(graph.collection("Orgs")) == 2

    def test_null_cells_missing_attributes(self, graph):
        # suciu has no phone: the attribute is absent, not empty.
        assert graph.get_one(Oid("People_suciu"), "phone") is None
        assert graph.get_one(Oid("People_mff"), "phone") is not None

    def test_foreign_keys_become_references(self, graph):
        org = graph.get_one(Oid("People_mff"), "org")
        assert org == Oid("Orgs_org1")

    def test_multivalued_cells_split(self, graph):
        projects = [str(p) for p in graph.get(Oid("People_mff"),
                                              "projects")]
        assert projects == ["strudel", "tangram"]

    def test_dangling_foreign_key(self):
        wrapper = RelationalWrapper(
            key_columns={"People": "login"},
            foreign_keys={("People", "org"): "Orgs"})
        with pytest.raises(WrapperError):
            wrapper.wrap_tables({
                "People": "login,org\nx,missing\n",
                "Orgs": "id,name\n",
            })

    def test_missing_key_rejected(self):
        wrapper = RelationalWrapper(key_columns={"T": "id"})
        with pytest.raises(WrapperError):
            wrapper.wrap_tables({"T": "id,x\n,1\n"})

    def test_table_directive(self):
        graph = RelationalWrapper().wrap("#table Pets\nname\nrex\n")
        assert len(graph.collection("Pets")) == 1

    def test_numeric_typing(self):
        graph = RelationalWrapper().wrap("#table T\nn,f\n3,2.5\n")
        row = graph.collection("T")[0]
        assert graph.get_one(row, "n") == Atom.int(3)
        assert graph.get_one(row, "f") == Atom.float(2.5)


RECORDS = """
# project data
id: strudel
name: STRUDEL
member: mff
member: suciu
synopsis: Web-site management.

id: tangram
name: TANGRAM
lead: ref:strudel
"""


class TestStructuredFile:
    @pytest.fixture
    def graph(self):
        return StructuredFileWrapper(collection="Projects").wrap(RECORDS)

    def test_records_split_on_blank_lines(self, graph):
        assert len(graph.collection("Projects")) == 2

    def test_repeated_keys_multivalued(self, graph):
        members = [str(m) for m in graph.get(Oid("Projects_strudel"),
                                             "member")]
        assert members == ["mff", "suciu"]

    def test_missing_synopsis_is_missing(self, graph):
        assert graph.get_one(Oid("Projects_tangram"), "synopsis") is None

    def test_references(self, graph):
        assert graph.get_one(Oid("Projects_tangram"), "lead") == \
            Oid("Projects_strudel")

    def test_comments_skipped(self, graph):
        assert graph.node_count == 2

    def test_dangling_reference(self):
        with pytest.raises(WrapperError):
            StructuredFileWrapper().wrap("id: a\nx: ref:nope\n")

    def test_malformed_line(self):
        with pytest.raises(WrapperError):
            StructuredFileWrapper().wrap("no colon here\n")

    def test_anonymous_records_numbered(self):
        graph = StructuredFileWrapper(collection="R").wrap(
            "a: 1\n\nb: 2\n")
        assert len(graph.collection("R")) == 2


PAGE_A = """<html><head><title>Page A</title>
<meta name="section" content="sports"></head>
<body><h1>Big game</h1><p>Lots of text.</p>
<a href="b.html">see B</a><a href="http://elsewhere/">out</a>
<img src="photo.jpg"></body></html>"""

PAGE_B = "<html><head><title>Page B</title></head><body>B body</body></html>"


class TestHtml:
    @pytest.fixture
    def graph(self):
        return HtmlWrapper().wrap_pages({"a.html": PAGE_A,
                                         "b.html": PAGE_B})

    def test_pages_collection(self, graph):
        assert len(graph.collection("Pages")) == 2

    def test_title_and_heading(self, graph):
        assert str(graph.get_one(Oid("a.html"), "title")) == "Page A"
        assert str(graph.get_one(Oid("a.html"), "heading")) == "Big game"

    def test_internal_links_resolve_to_nodes(self, graph):
        targets = graph.get(Oid("a.html"), "link")
        assert Oid("b.html") in targets

    def test_external_links_are_urls(self, graph):
        urls = [t for t in graph.get(Oid("a.html"), "link")
                if isinstance(t, Atom)]
        assert urls and urls[0].type is AtomType.URL

    def test_images_typed(self, graph):
        image = graph.get_one(Oid("a.html"), "image")
        assert image.type is AtomType.IMAGE_FILE

    def test_meta_attributes(self, graph):
        assert str(graph.get_one(Oid("a.html"), "meta-section")) == \
            "sports"

    def test_text_collected(self, graph):
        assert "Lots of text." in str(graph.get_one(Oid("a.html"), "text"))

    def test_script_content_excluded(self):
        graph = HtmlWrapper().wrap(
            "<html><body><script>var x;</script>visible</body></html>")
        page = graph.collection("Pages")[0]
        assert "var x" not in str(graph.get_one(page, "text"))


XML = """<lab id="lab1" city="Florham Park">
  <project id="strudel" year="1996">
    <member>mff</member>
    <member>suciu</member>
  </project>
</lab>"""


class TestXml:
    @pytest.fixture
    def graph(self):
        return XmlWrapper().wrap(XML)

    def test_elements_become_nodes(self, graph):
        assert graph.has_node(Oid("lab1"))
        assert graph.has_node(Oid("strudel"))

    def test_attributes(self, graph):
        assert str(graph.get_one(Oid("lab1"), "city")) == "Florham Park"
        assert graph.get_one(Oid("strudel"), "year") == Atom.int(1996)

    def test_children_linked_by_tag(self, graph):
        assert graph.get_one(Oid("lab1"), "project") == Oid("strudel")

    def test_text_content(self, graph):
        members = graph.get(Oid("strudel"), "member")
        texts = [str(graph.get_one(m, "text")) for m in members]
        assert texts == ["mff", "suciu"]

    def test_collections_by_tag(self, graph):
        assert graph.in_collection("Lab", Oid("lab1"))
        assert graph.in_collection("Project", Oid("strudel"))

    def test_malformed_xml(self):
        with pytest.raises(WrapperError):
            XmlWrapper().wrap("<unclosed>")


class TestOrderedAuthors:
    """The section 5.2 order solution: integer keys on authors."""

    BIB = "@article{k, author={Z Last and A First and M Middle}, year=1}"

    def test_author_objects_with_rank_keys(self):
        graph = BibTexWrapper(ordered_authors=True).wrap(self.BIB)
        authors = graph.get(Oid("k"), "author")
        assert all(isinstance(a, Oid) for a in authors)
        names = [str(graph.get_one(a, "name")) for a in authors]
        keys = [graph.get_one(a, "key").value for a in authors]
        assert names == ["Z Last", "A First", "M Middle"]
        assert keys == [1, 2, 3]

    def test_template_order_by_key(self):
        from repro.templates import HtmlGenerator, TemplateSet
        graph = BibTexWrapper(ordered_authors=True).wrap(self.BIB)
        templates = TemplateSet()
        templates.add("k", '<SFOR a @author ORDER=ascend KEY=key '
                           'DELIM=", "><SFMT @a.name></SFOR>')
        html = HtmlGenerator(graph, templates).render(Oid("k"))
        assert html == "Z Last, A First, M Middle"

    def test_reversed_rendering_possible(self):
        from repro.templates import HtmlGenerator, TemplateSet
        graph = BibTexWrapper(ordered_authors=True).wrap(self.BIB)
        templates = TemplateSet()
        templates.add("k", '<SFOR a @author ORDER=descend KEY=key '
                           'DELIM="; "><SFMT @a.name></SFOR>')
        html = HtmlGenerator(graph, templates).render(Oid("k"))
        assert html == "M Middle; A First; Z Last"

    def test_default_mode_unchanged(self):
        graph = BibTexWrapper().wrap(self.BIB)
        authors = graph.get(Oid("k"), "author")
        assert all(not isinstance(a, Oid) for a in authors)


JSON_DOC = """
[
  {"id": "p1", "title": "One", "year": 1997, "score": 4.5,
   "tags": ["db", "web"], "active": true, "nothing": null,
   "venue": {"name": "SIGMOD", "url": "http://sigmod.org/"},
   "paper": "papers/one.ps"},
  {"id": "p2", "title": "Two"}
]
"""


class TestJsonWrapper:
    @pytest.fixture
    def graph(self):
        from repro.wrappers import JsonWrapper
        return JsonWrapper(collection="Pubs").wrap(JSON_DOC)

    def test_array_elements_join_collection(self, graph):
        assert [str(m) for m in graph.collection("Pubs")] == ["p1", "p2"]

    def test_scalar_typing(self, graph):
        p1 = Oid("p1")
        assert graph.get_one(p1, "year") == Atom.int(1997)
        assert graph.get_one(p1, "score") == Atom.float(4.5)
        assert graph.get_one(p1, "active") == Atom.bool(True)
        assert graph.get_one(p1, "paper").type is \
            AtomType.POSTSCRIPT_FILE

    def test_arrays_become_multivalued(self, graph):
        tags = [str(t) for t in graph.get(Oid("p1"), "tags")]
        assert tags == ["db", "web"]

    def test_null_means_missing(self, graph):
        assert graph.get_one(Oid("p1"), "nothing") is None

    def test_nested_object(self, graph):
        venue = graph.get_one(Oid("p1"), "venue")
        assert isinstance(venue, Oid)
        assert str(graph.get_one(venue, "name")) == "SIGMOD"
        assert graph.get_one(venue, "url").type is AtomType.URL

    def test_irregular_objects(self, graph):
        assert graph.get_one(Oid("p2"), "year") is None

    def test_single_object_document(self):
        from repro.wrappers import JsonWrapper
        graph = JsonWrapper().wrap('{"id": "only", "x": 1}')
        assert graph.collection("Items") == [Oid("only")]

    def test_malformed_json(self):
        from repro.wrappers import JsonWrapper
        with pytest.raises(WrapperError):
            JsonWrapper().wrap("{broken")

    def test_scalar_toplevel_rejected(self):
        from repro.wrappers import JsonWrapper
        with pytest.raises(WrapperError):
            JsonWrapper().wrap("42")

    def test_array_of_scalars_rejected(self):
        from repro.wrappers import JsonWrapper
        with pytest.raises(WrapperError):
            JsonWrapper().wrap("[1, 2]")
