"""Incremental / click-time evaluation [FER 98c]: dynamic pages must
agree exactly with the materialized site graph."""

import pytest

from repro.errors import PageNotFoundError
from repro.graph import Atom, Graph, Oid
from repro.site import DynamicSite, LazySiteGraph
from repro.struql import QueryEngine
from repro.sites.homepage import FIG3_QUERY


class TestDynamicSite:
    @pytest.fixture
    def dynamic(self, fig2_graph):
        return DynamicSite(FIG3_QUERY, fig2_graph)

    def test_roots_are_precomputable(self, dynamic):
        roots = {str(r) for r in dynamic.roots()}
        assert roots == {"RootPage()", "AbstractsPage()"}

    def test_root_page_links(self, dynamic):
        view = dynamic.get_page(Oid.skolem("RootPage", ()))
        labels = {label for label, _ in view.edges}
        assert labels == {"AbstractsPage", "YearPage", "CategoryPage"}

    def test_parameterized_page(self, dynamic):
        year = Oid.skolem("YearPage", (Atom.int(1997),))
        view = dynamic.get_page(year)
        assert ("Year", Atom.int(1997)) in view.edges
        papers = [t for label, t in view.edges if label == "Paper"]
        assert papers == [Oid.skolem("PaperPresentation", (Oid("pub1"),))]

    def test_agrees_with_materialized(self, fig2_graph, fig4_site,
                                      dynamic):
        """Every materialized page's out-edges match the dynamic view."""
        for node in fig4_site.nodes():
            if node.skolem_fn is None:
                continue
            view = dynamic.get_page(node)
            materialized = {(e.label, e.target)
                            for e in fig4_site.out_edges(node)}
            assert set(view.edges) == materialized, str(node)

    def test_cache_hits_counted(self, fig2_graph):
        site = DynamicSite(FIG3_QUERY, fig2_graph, cache=True)
        page = Oid.skolem("RootPage", ())
        site.get_page(page)
        before = site.stats["page_cache_hits"]
        site.get_page(page)
        assert site.stats["page_cache_hits"] == before + 1

    def test_cache_disabled(self, fig2_graph):
        site = DynamicSite(FIG3_QUERY, fig2_graph, cache=False)
        page = Oid.skolem("RootPage", ())
        site.get_page(page)
        site.get_page(page)
        assert site.stats["page_cache_hits"] == 0
        assert site.stats["pages_computed"] == 2

    def test_stats_reconcile(self, fig2_graph):
        """Hits + misses == calls, and computes == misses — the old
        folded ``cache_hits`` counter double-counted bindings hits."""
        site = DynamicSite(FIG3_QUERY, fig2_graph, cache=True)
        root = Oid.skolem("RootPage", ())
        calls = 0
        for _ in range(3):
            view = site.get_page(root)
            calls += 1
            for _label, target in view.edges:
                if isinstance(target, Oid) and target.skolem_fn:
                    site.get_page(target)
                    calls += 1
        stats = site.stats_snapshot()
        assert (stats["page_cache_hits"]
                + stats["page_cache_misses"]) == calls
        assert stats["pages_computed"] == stats["page_cache_misses"]

    def test_invalidate_sees_new_data(self, fig2_graph, dynamic):
        root = Oid.skolem("RootPage", ())
        before = dynamic.get_page(root)
        years_before = sum(1 for label, _ in before.edges
                           if label == "YearPage")
        pub3 = Oid("pub3")
        fig2_graph.add_to_collection("Publications", pub3)
        fig2_graph.add_edge(pub3, "year", Atom.int(1999))
        fig2_graph.add_edge(pub3, "title", Atom.string("New"))
        stale = dynamic.get_page(root)
        assert sum(1 for label, _ in stale.edges
                   if label == "YearPage") == years_before
        dynamic.invalidate()
        fresh = dynamic.get_page(root)
        assert sum(1 for label, _ in fresh.edges
                   if label == "YearPage") == years_before + 1

    def test_unknown_page(self, dynamic):
        with pytest.raises(PageNotFoundError):
            dynamic.get_page(Oid("not-a-skolem-page"))

    def test_collections_computed(self, fig2_graph):
        site = DynamicSite("""
            input BIBTEX
            where Publications(x)
            create P(x)
            link P(x) -> "of" -> x
            collect Pages(P(x))
            output O
        """, fig2_graph)
        view = site.get_page(Oid.skolem("P", (Oid("pub1"),)))
        assert view.collections == ["Pages"]


class TestLazySiteGraph:
    def test_pages_materialize_on_demand(self, fig2_graph):
        lazy = LazySiteGraph(DynamicSite(FIG3_QUERY, fig2_graph))
        assert lazy.materialized_count == 0
        root = Oid.skolem("RootPage", ())
        years = [t for t in lazy.get(root, "YearPage")]
        assert len(years) == 2
        assert lazy.materialized_count == 1  # only the root so far

    def test_matches_materialized_site(self, fig2_graph, fig4_site):
        lazy = LazySiteGraph(DynamicSite(FIG3_QUERY, fig2_graph))
        for node in fig4_site.nodes():
            if node.skolem_fn is None:
                continue
            expected = {(e.label, e.target)
                        for e in fig4_site.out_edges(node)}
            actual = {(e.label, e.target) for e in lazy.out_edges(node)}
            assert actual == expected

    def test_non_skolem_nodes_pass_through(self, fig2_graph):
        lazy = LazySiteGraph(DynamicSite(FIG3_QUERY, fig2_graph))
        assert lazy.out_edges(Oid("pub1")) == []


class TestDynamicAggregates:
    def test_click_time_aggregation(self, fig2_graph):
        """Aggregates work in per-page click-time queries too."""
        site = DynamicSite("""
            input BIBTEX
            create Stats()
            { where Publications(x), x -> "author" -> a,
                    count(a) per x as n
              create Card(x)
              link Card(x) -> "authors" -> n,
                   Stats() -> "Card" -> Card(x) }
            output O
        """, fig2_graph)
        card = Oid.skolem("Card", (Oid("pub1"),))
        view = site.get_page(card)
        assert ("authors", Atom.int(2)) in view.edges

    def test_global_aggregate_agrees_with_materialized(self, fig2_graph):
        """A page using a *global* aggregate must see the full-relation
        value, not one restricted to its own Skolem arguments."""
        query = """
            input BIBTEX
            { where Publications(x), count(x) as total
              create Card(x)
              link Card(x) -> "of" -> total }
            output O
        """
        materialized = QueryEngine().evaluate(query, fig2_graph).output
        dynamic = DynamicSite(query, fig2_graph)
        card = Oid.skolem("Card", (Oid("pub1"),))
        expected = {(e.label, e.target)
                    for e in materialized.out_edges(card)}
        assert set(dynamic.get_page(card).edges) == expected
        assert ("of", Atom.int(2)) in expected  # 2 pubs in Fig 2


class TestThreadSafety:
    """PR 7 bugfix: ``DynamicSite`` is shared by server threads but its
    caches and stats were unguarded — concurrent ``get_page`` calls and
    ``invalidate()`` raced on plain dicts."""

    def test_concurrent_get_page_with_invalidation(self, fig2_graph):
        import threading

        site = DynamicSite(FIG3_QUERY, fig2_graph, cache=True)
        pages = [Oid.skolem("RootPage", ()),
                 Oid.skolem("AbstractsPage", ()),
                 Oid.skolem("YearPage", (Atom.int(1997),)),
                 Oid.skolem("YearPage", (Atom.int(1998),))]
        expected = {page: set(site.get_page(page).edges)
                    for page in pages}
        site.invalidate()

        errors: list[BaseException] = []
        stop = threading.Event()

        def hammer(page):
            try:
                while not stop.is_set():
                    view = site.get_page(page)
                    assert set(view.edges) == expected[page]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def churn():
            try:
                while not stop.is_set():
                    site.invalidate()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(page,))
                   for page in pages for _ in range(2)]
        threads.append(threading.Thread(target=churn))
        for thread in threads:
            thread.start()
        timer = threading.Timer(1.0, stop.set)
        timer.start()
        for thread in threads:
            thread.join(timeout=30)
        timer.cancel()
        stop.set()
        assert not errors, errors[0]
        snapshot = site.stats_snapshot()
        assert snapshot["pages_computed"] > 0
        assert snapshot["pages_computed"] == snapshot["page_cache_misses"]

    def test_lru_cap_bounds_cache(self, fig2_graph):
        site = DynamicSite(FIG3_QUERY, fig2_graph, cache=True,
                           max_pages=2)
        pages = [Oid.skolem("YearPage", (Atom.int(1997),)),
                 Oid.skolem("YearPage", (Atom.int(1998),)),
                 Oid.skolem("RootPage", ()),
                 Oid.skolem("AbstractsPage", ())]
        for page in pages:
            site.get_page(page)
        snapshot = site.stats_snapshot()
        assert snapshot["page_cache_size"] <= 2
        assert snapshot["page_cache_evictions"] >= 2
        assert snapshot["max_pages"] == 2
        # The two most recent pages are still hits.
        before = site.stats_snapshot()["page_cache_hits"]
        site.get_page(pages[-1])
        assert site.stats_snapshot()["page_cache_hits"] == before + 1
