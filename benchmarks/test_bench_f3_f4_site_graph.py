"""Experiment F3/F4: the Fig 3 site-definition query and Fig 4 site graph.

Evaluates the paper's exact query over the Fig 2 data and asserts the
Fig 4 structure node by node, with the evaluation itself benchmarked
for all three optimizer generations.
"""

import pytest

from repro.graph import Atom, Oid
from repro.sites.homepage import FIG3_QUERY, fig2_data
from repro.struql import QueryEngine, parse_query

EXPERIMENT = "F3/F4: Fig 3 query -> Fig 4 site graph"


@pytest.mark.parametrize("optimizer", ["naive", "heuristic", "cost"])
def test_fig3_evaluation(benchmark, experiment, optimizer):
    data = fig2_data()
    query = parse_query(FIG3_QUERY)
    engine = QueryEngine(optimizer=optimizer)

    result = benchmark(lambda: engine.evaluate(query, data))
    site = result.output

    root = Oid.skolem("RootPage", ())
    year97 = Oid.skolem("YearPage", (Atom.int(1997),))
    pres1 = Oid.skolem("PaperPresentation", (Oid("pub1"),))
    abs1 = Oid.skolem("AbstractPage", (Oid("pub1"),))
    assert site.has_edge(root, "AbstractsPage",
                         Oid.skolem("AbstractsPage", ()))
    assert site.has_edge(root, "YearPage", year97)
    assert site.has_edge(year97, "Year", Atom.int(1997))
    assert site.has_edge(year97, "Paper", pres1)
    assert site.has_edge(pres1, "Abstract", abs1)

    year_pages = sum(1 for n in site.nodes() if n.skolem_fn == "YearPage")
    category_pages = sum(1 for n in site.nodes()
                         if n.skolem_fn == "CategoryPage")
    if optimizer == "cost":
        experiment.row(artifact="YearPage nodes (Fig 4)", paper=2,
                       measured=year_pages)
        experiment.row(artifact="CategoryPage nodes", paper=3,
                       measured=category_pages)
        experiment.row(artifact="site nodes", paper="~11 (fragment)",
                       measured=site.node_count)
        experiment.row(artifact="query link clauses", paper=11,
                       measured=query.link_count())
    assert year_pages == 2 and category_pages == 3
