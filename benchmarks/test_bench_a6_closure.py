"""Experiment A6: expressive power — FO+TC (section 3).

"Surprisingly, StruQL can express transitive closure of an arbitrary
relation as the composition of two queries" (a single where-link query
cannot, per [BUN 96]).  We verify the construction against networkx's
transitive closure and measure its scaling on random DAG relations.
"""

import random

import networkx as nx
import pytest

from repro.graph import Atom, Graph, Oid
from repro.struql.rewriter import compose

EXPERIMENT = "A6: transitive closure by query composition"

BUILD_GRAPH = """
input R
where R(t), t -> "from" -> a, t -> "to" -> b
create N(a), N(b)
link N(a) -> "e" -> N(b)
collect Nodes(N(a)), Nodes(N(b))
output E
"""

CLOSURE = """
input E
where Nodes(x), x -> "e" . "e"* -> y
create M(x), M(y)
link M(x) -> "tc" -> M(y)
output TC
"""


def _relation(pairs: list[tuple[int, int]]) -> Graph:
    graph = Graph("R")
    for index, (left, right) in enumerate(pairs):
        t = Oid(f"t{index}")
        graph.add_to_collection("R", t)
        graph.add_edge(t, "from", Atom.int(left))
        graph.add_edge(t, "to", Atom.int(right))
    return graph


def _random_pairs(nodes: int, edges: int, seed: int = 13):
    rng = random.Random(seed)
    pairs = set()
    while len(pairs) < edges:
        pairs.add((rng.randrange(nodes), rng.randrange(nodes)))
    return sorted(pairs)


@pytest.mark.parametrize("nodes,edges", [(20, 40), (60, 120)])
def test_closure_matches_networkx(benchmark, experiment, nodes, edges):
    pairs = _random_pairs(nodes, edges)
    relation = _relation(pairs)

    result = benchmark(lambda: compose([BUILD_GRAPH, CLOSURE], relation))
    out = result.output

    reference = nx.DiGraph(pairs)
    expected = set()
    for source in reference.nodes:
        descendants = nx.descendants(reference, source)
        for target in descendants:
            expected.add((source, target))
        # nx.descendants never reports the source itself; a node on a
        # cycle reaches itself via a path of length >= 1, which e.e*
        # correctly matches.
        if any(source in nx.descendants(reference, succ)
               or succ == source
               for succ in reference.successors(source)):
            expected.add((source, source))

    def m(value: int) -> Oid:
        return Oid.skolem("M", (Oid.skolem("N", (Atom.int(value),)),))

    mine = {e for e in out.edges() if e.label == "tc"}
    mine_pairs = set()
    for edge in mine:
        source_arg = edge.source.skolem_args[0].skolem_args[0]
        target_arg = edge.target.skolem_args[0].skolem_args[0]
        mine_pairs.add((int(source_arg.value), int(target_arg.value)))
    assert mine_pairs == expected

    experiment.row(relation_nodes=nodes, relation_edges=edges,
                   closure_pairs=len(mine_pairs),
                   note="matches networkx descendants exactly")
