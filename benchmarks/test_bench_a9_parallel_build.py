"""Experiment A9 (extension): parallel + content-hash-cached builds.

PR 7's build pipeline has two levers: render pages on N threads
(``--jobs``) and skip pages the persistent build cache proves
unchanged (``--cache-dir``/``--incremental``).  This benchmark measures
both on the CNN example site and feeds the committed regression file:
``site_build_p50_s`` is the cold-build p50 (span ``site.build_cold``)
and ``site_rebuild_p50_s`` the warm no-op rebuild p50 (span
``site.build_warm``), which must render zero pages.
"""

import shutil

from repro import obs
from repro.sites.cnn import build_cnn_site

EXPERIMENT = "A9 (extension): parallel + cached builds"

ARTICLES = 120


def _website():
    site = build_cnn_site(articles=ARTICLES)
    site.build()  # force query evaluation outside the timed region
    return site


def test_cold_vs_warm_rebuild(benchmark, experiment, tmp_path):
    """A warm rebuild of an unchanged site renders nothing — the cache
    turns a full render into a fingerprint check."""
    out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
    website = _website()

    with obs.timed("site.build_cold"):
        cold = website.build_site(out, cache_dir=cache)
    assert cold.pages_rendered > 0

    def warm_rebuild():
        rebuilt = _website()  # query evaluation is not build time
        with obs.timed("site.build_warm"):
            return rebuilt.build_site(out, cache_dir=cache)

    warm = benchmark(warm_rebuild)
    assert warm.pages_rendered == 0, warm.summary()
    assert warm.cache_hit_ratio == 1.0
    speedup = cold.seconds / warm.seconds if warm.seconds else float("inf")
    experiment.row(mode="cold build", pages=cold.pages_rendered,
                   seconds=f"{cold.seconds:.3f}")
    experiment.row(mode="warm rebuild (unchanged)",
                   pages=warm.pages_rendered,
                   seconds=f"{warm.seconds:.3f}",
                   note=f"{speedup:.1f}x faster than cold")


def test_incremental_after_data_change(experiment, tmp_path):
    """After editing one publication, the planner re-renders a small
    fraction of the site.  (The bibliography site, not CNN: CNN's
    ``Related`` links connect most pages, so a single article edit
    legitimately dirties the whole site.)"""
    from repro.datagen import generate_bibtex
    from repro.graph import Atom, Oid
    from repro.site.builder import Website
    from repro.sites.homepage import FIG3_QUERY, fig7_templates
    from repro.wrappers import BibTexWrapper

    out, cache = str(tmp_path / "out"), str(tmp_path / "cache")
    data = BibTexWrapper().wrap(generate_bibtex(240, seed=6), "BIBTEX")
    cold = Website(data, FIG3_QUERY, fig7_templates()).build_site(
        out, cache_dir=cache)

    pub = next(o for o in data.collection("Publications")
               if isinstance(o, Oid))
    data.add_edge(pub, "note", Atom.string("errata"))
    with obs.timed("site.build_warm"):
        report = Website(data, FIG3_QUERY, fig7_templates()).build_site(
            out, cache_dir=cache)
    assert 0 < report.pages_rendered < cold.pages_rendered
    experiment.row(mode="1 publication edited",
                   pages=f"{report.pages_rendered}/{cold.pages_rendered}",
                   note=f"{report.cache_hit_ratio:.0%} served from cache")


def test_parallel_jobs_scaling(benchmark, experiment, tmp_path):
    """--jobs N renders pages on N threads with byte-identical output.

    Speedup needs real cores; on a single-CPU runner the assertion is
    only that parallel output matches serial output exactly.
    """
    website = _website()
    serial_dir, parallel_dir = str(tmp_path / "s"), str(tmp_path / "p")

    with obs.timed("site.build_cold"):
        serial = website.build_site(serial_dir, jobs=1)

    def parallel_build():
        shutil.rmtree(parallel_dir, ignore_errors=True)
        with obs.timed("site.build_cold"):
            return _website().build_site(parallel_dir, jobs=4)

    parallel = benchmark(parallel_build)
    assert parallel.pages_rendered == serial.pages_rendered
    assert sorted(str(p) for p in parallel.written) == \
        sorted(str(p) for p in serial.written)
    experiment.row(mode="serial (jobs=1)", pages=serial.pages_rendered,
                   seconds=f"{serial.seconds:.3f}")
    experiment.row(mode="parallel (jobs=4)",
                   pages=parallel.pages_rendered,
                   seconds=f"{parallel.seconds:.3f}",
                   note=f"{serial.seconds / parallel.seconds:.2f}x "
                        f"vs serial")
