"""Experiment A2: optimizer generations (section 2.4).

The paper built "a simple heuristic-based optimizer" first, then the
cost-based algorithm of [FLO 97] that "can enumerate plans that exploit
indexes on the data and the schema".  We compare all three generations
(naive source order, heuristic, cost-based) on a join-ordering-sensitive
workload: a selective small collection joined against a large one
through an attribute edge, written with the *bad* order first.
"""

import time

import pytest

from repro.graph import Atom, Graph, Oid
from repro.struql import QueryEngine

EXPERIMENT = "A2: optimizer generations"

#: Deliberately bad source order: the big scan first.
JOIN_QUERY = """
input G
where Big(x), x -> "v" -> w, Small(y), y -> "big" -> x, w != 99
create R(y, x)
collect Out(R(y, x))
output O
"""


def _skewed(big: int, small: int) -> Graph:
    graph = Graph("G")
    for index in range(big):
        oid = Oid(f"big{index}")
        graph.add_to_collection("Big", oid)
        graph.add_edge(oid, "v", Atom.int(index % 11))
    for index in range(small):
        oid = Oid(f"small{index}")
        graph.add_to_collection("Small", oid)
        graph.add_edge(oid, "big", Oid(f"big{index}"))
    return graph


@pytest.mark.parametrize("optimizer", ["naive", "heuristic", "cost"])
def test_join_ordering(benchmark, experiment, optimizer):
    graph = _skewed(big=1500, small=5)
    engine = QueryEngine(optimizer=optimizer)

    result = benchmark(lambda: engine.evaluate(JOIN_QUERY, graph))
    assert len(result.output.collection("Out")) == 5
    experiment.row(optimizer=optimizer,
                   bindings=result.total_bindings,
                   answers=len(result.output.collection("Out")))


def test_ordering_shape(experiment, benchmark):
    """The paper's progression: each generation is at least as good,
    and the cost-based optimizer wins on this workload."""
    graph = _skewed(big=1500, small=5)
    cost_engine = QueryEngine(optimizer="cost")
    benchmark(lambda: cost_engine.evaluate(JOIN_QUERY, graph))
    latencies = {}
    for optimizer in ("naive", "heuristic", "cost"):
        engine = QueryEngine(optimizer=optimizer)
        started = time.perf_counter()
        for _ in range(3):
            engine.evaluate(JOIN_QUERY, graph)
        latencies[optimizer] = time.perf_counter() - started
    experiment.row(optimizer="naive vs cost latency ratio",
                   bindings="",
                   answers=f"{latencies['naive'] / latencies['cost']:.1f}x")
    assert latencies["cost"] < latencies["naive"]
