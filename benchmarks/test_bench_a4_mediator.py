"""Experiment A4: warehousing vs virtual integration (section 2.3).

The prototype warehouses; the architecture accommodates either.  The
trade-off: a warehouse pays integration once and goes stale as sources
update; the virtual view pays integration per query and is always
fresh.  We measure both costs on the five-source org workload and the
crossover in total cost as the update:query ratio varies.
"""

import time

import pytest

from repro.datagen import build_org_mediator

EXPERIMENT = "A4: warehousing vs virtual mediation"


def _mediator():
    return build_org_mediator(people=120, projects=12, publications=30)


def test_warehouse_build(benchmark, experiment):
    mediator = _mediator()
    graph = benchmark(mediator.refresh)
    experiment.row(mode="warehouse build (5 sources)",
                   edges=graph.edge_count, note="paid per refresh")


def test_warehouse_query_is_free(benchmark, experiment):
    mediator = _mediator()
    mediator.warehouse()
    graph = benchmark(mediator.warehouse)
    experiment.row(mode="warehoused read", edges=graph.edge_count,
                   note="cached; staleness grows with source updates")


def test_virtual_query(benchmark, experiment):
    mediator = _mediator()
    graph = benchmark(mediator.virtual_view)
    experiment.row(mode="virtual read", edges=graph.edge_count,
                   note="integration cost on every query; always fresh")


@pytest.mark.parametrize("updates_per_query", [0.1, 1.0, 10.0])
def test_total_cost_crossover(experiment, benchmark,
                              updates_per_query):
    """Warehouse total cost ~ refresh_cost * updates; virtual ~
    integrate_cost * queries.  The policy crossover is at one source
    update per query (refresh-on-update policy)."""
    mediator = _mediator()
    benchmark(mediator.warehouse)
    started = time.perf_counter()
    mediator.refresh()
    refresh_cost = time.perf_counter() - started
    started = time.perf_counter()
    mediator.virtual_view()
    virtual_cost = time.perf_counter() - started

    queries = 20
    updates = queries * updates_per_query
    warehouse_total = refresh_cost * updates  # refresh per update
    virtual_total = virtual_cost * queries
    winner = "warehouse" if warehouse_total < virtual_total else "virtual"
    experiment.row(mode=f"{updates_per_query} updates/query",
                   edges="",
                   note=f"warehouse {warehouse_total * 1000:.0f} ms vs "
                        f"virtual {virtual_total * 1000:.0f} ms -> "
                        f"{winner} wins")
    # Shape check: warehousing wins when updates are rare, virtual when
    # sources churn faster than they are read.
    if updates_per_query < 1.0:
        assert warehouse_total <= virtual_total
    if updates_per_query > 1.0:
        assert virtual_total <= warehouse_total


def test_staleness_accounting(experiment, benchmark):
    mediator = _mediator()
    benchmark(mediator.warehouse)
    for _ in range(7):
        mediator.source("people").touch()
    experiment.row(mode="staleness counter", edges="",
                   note=f"{mediator.staleness()} unseen source updates")
    assert mediator.staleness() == 7
