"""Experiment A1: the full-indexing design choice (section 2.2).

The paper: "maintaining these indexes is expensive, but they provide
many benefits to our query language".  We measure both halves — index
build cost, and query latency with and without indexes — across data
sizes, on a backward-anchored workload where the backward index is the
winning access path.
"""

import time

import pytest

from repro.datagen import generate_bibtex
from repro.repository import GraphIndex, GraphStatistics, Repository
from repro.struql import QueryEngine, parse_query
from repro.wrappers import BibTexWrapper

EXPERIMENT = "A1: indexing ablation"

#: Backward-anchored lookup: which publications appeared in 1995?  A
#: backward index answers directly; a scan walks every edge.
LOOKUP_QUERY = """
input BIBTEX
where p -> "year" -> 1995
create Hit(p)
collect Hits(Hit(p))
output O
"""


def _data(entries: int):
    return BibTexWrapper().wrap(generate_bibtex(entries, seed=3), "BIBTEX")


@pytest.mark.parametrize("entries", [50, 200, 800])
@pytest.mark.parametrize("indexing", [True, False])
def test_lookup_with_and_without_indexes(benchmark, experiment, entries,
                                         indexing):
    data = _data(entries)
    engine = QueryEngine(indexing=indexing)
    index = GraphIndex.build(data) if indexing else None
    stats = GraphStatistics.gather(data)
    query = parse_query(LOOKUP_QUERY)

    result = benchmark(lambda: engine.evaluate(query, data, index=index,
                                               stats=stats))
    hits = len(result.output.collection("Hits"))
    assert hits > 0
    experiment.row(entries=entries,
                   mode="indexed" if indexing else "scan",
                   edges=data.edge_count, hits=hits)


def test_index_build_cost(benchmark, experiment):
    """The 'maintaining these indexes is expensive' half of the claim."""
    data = _data(800)
    index = benchmark(GraphIndex.build, data)
    assert index.fresh
    experiment.row(entries=800, mode="index build",
                   edges=data.edge_count,
                   hits=f"{len(index.labels())} labels, "
                        f"{len(index.atoms())} values")


def test_speedup_shape(experiment, benchmark):
    """The paper's trade-off holds: indexed lookup latency grows far
    slower than scan latency as data grows."""
    warm = _data(100)
    warm_index = GraphIndex.build(warm)
    warm_stats = GraphStatistics.gather(warm)
    warm_engine = QueryEngine(indexing=True)
    warm_query = parse_query(LOOKUP_QUERY)
    benchmark(lambda: warm_engine.evaluate(warm_query, warm,
                                           index=warm_index,
                                           stats=warm_stats))
    timings = {}
    for entries in (100, 800):
        data = _data(entries)
        stats = GraphStatistics.gather(data)
        query = parse_query(LOOKUP_QUERY)
        for indexing in (True, False):
            engine = QueryEngine(indexing=indexing)
            index = GraphIndex.build(data) if indexing else None
            started = time.perf_counter()
            for _ in range(20):
                engine.evaluate(query, data, index=index, stats=stats)
            timings[(entries, indexing)] = time.perf_counter() - started
    small_speedup = timings[(100, False)] / timings[(100, True)]
    large_speedup = timings[(800, False)] / timings[(800, True)]
    experiment.row(entries=100, mode="scan/indexed latency ratio",
                   edges="", hits=f"{small_speedup:.1f}x")
    experiment.row(entries=800, mode="scan/indexed latency ratio",
                   edges="", hits=f"{large_speedup:.1f}x")
    # Direction: indexed access wins clearly at the larger size (the
    # growth trend is reported above; exact ratios are noisy).
    assert large_speedup > 1.2
