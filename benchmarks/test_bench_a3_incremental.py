"""Experiment A3: complete materialization vs click-time evaluation.

The paper (section 1): materializing the whole site has warehouse-style
costs and staleness; the alternative "precomputes the root(s)" and
computes each page's query at click time, with result caching.  We
measure build cost, first-click and cached-click latency, and the
fraction of the site a short browsing session actually computes.
"""

import time

import pytest

from repro.datagen import generate_bibtex
from repro.site import DynamicSiteServer
from repro.sites.homepage import FIG3_QUERY, fig7_templates
from repro.struql import QueryEngine
from repro.templates import HtmlGenerator
from repro.wrappers import BibTexWrapper

EXPERIMENT = "A3: materialized vs click-time"

ENTRIES = 120


def _data():
    return BibTexWrapper().wrap(generate_bibtex(ENTRIES, seed=5),
                                "BIBTEX")


def test_full_materialization(benchmark, experiment, tmp_path):
    data = _data()

    def build_everything():
        site = QueryEngine().evaluate(FIG3_QUERY, data).output
        generator = HtmlGenerator(site, fig7_templates())
        return generator.generate_site(str(tmp_path))

    written = benchmark(build_everything)
    experiment.row(mode="materialize everything",
                   pages=len(written), note="paid before first visit")


def test_click_time_first_and_cached(benchmark, experiment):
    data = _data()
    server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
    root = server.roots()[0]
    first = server.request(root)

    cached = benchmark(lambda: server.request(root))
    assert cached.status == 200
    experiment.row(mode="first click (root)", pages=1,
                   note=f"{first.seconds * 1000:.2f} ms, computes on demand")
    experiment.row(mode="cached revisit", pages=1,
                   note=f"{cached.seconds * 1000:.3f} ms")


@pytest.mark.parametrize("cache", [True, False])
def test_browsing_session(benchmark, experiment, cache):
    """A 12-click session touches a small fraction of the site; the
    cache is what makes repeated unit evaluations affordable."""
    data = _data()

    def session():
        server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates(),
                                   cache=cache)
        server.crawl(limit=12)
        return server

    server = benchmark(session)
    total = sum(1 for n in QueryEngine().evaluate(FIG3_QUERY, data)
                .output.nodes() if n.skolem_fn is not None)
    experiment.row(mode=f"12-click session (cache={'on' if cache else 'off'})",
                   pages=f"{server.graph.materialized_count}/{total} computed",
                   note=f"{server.site.stats['unit_evaluations']} unit "
                        f"evaluations, "
                        f"{server.site.stats['page_cache_hits']} page hits")


def test_staleness_tradeoff(experiment, benchmark):
    """Materialization serves stale pages after a data update; the
    dynamic site pays an invalidation instead."""
    data = _data()
    materialized = QueryEngine().evaluate(FIG3_QUERY, data).output
    server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
    root = server.roots()[0]
    benchmark(lambda: server.request(root))

    # Update the data: one new publication in a new year.
    from repro.graph import Atom, Oid
    pub = Oid("pub_new")
    data.add_to_collection("Publications", pub)
    data.add_edge(pub, "year", Atom.int(2050))
    data.add_edge(pub, "title", Atom.string("Fresh"))

    stale_dynamic = "2050" in server.request(root).body
    server.invalidate()
    started = time.perf_counter()
    fresh_dynamic = "2050" in server.request(root).body
    invalidation_cost = time.perf_counter() - started
    stale_static = not any(
        n.skolem_fn == "YearPage" and "2050" in n.name
        for n in materialized.nodes())

    experiment.row(mode="materialized after update",
                   pages="site graph unchanged",
                   note="stale until full rebuild")
    experiment.row(mode="dynamic after invalidate",
                   pages="fresh",
                   note=f"recompute on click: "
                        f"{invalidation_cost * 1000:.2f} ms")
    assert stale_static and not stale_dynamic and fresh_dynamic
