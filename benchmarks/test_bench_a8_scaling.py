"""Experiment A8 (extension): end-to-end scaling.

Not a paper table — evidence that the reproduction scales the way the
architecture promises: site-graph construction and HTML generation grow
near-linearly in data size, so the 400-person AT&T-scale site of T1 is
nowhere near a cliff.
"""

import pytest

from repro.datagen import build_org_mediator
from repro.sites import build_org_site

EXPERIMENT = "A8 (extension): end-to-end scaling"


@pytest.mark.parametrize("people", [100, 400, 1000])
def test_org_site_scaling(benchmark, experiment, people, tmp_path):
    data = build_org_mediator(people=people,
                              projects=max(8, people // 20),
                              publications=people // 8).warehouse()

    def build_and_generate():
        site = build_org_site(data=data.copy("ORGDATA"))
        site.generate(str(tmp_path))
        return site

    site = benchmark.pedantic(build_and_generate, rounds=2,
                              warmup_rounds=0, iterations=1)
    metrics = site.metrics()
    experiment.row(people=people,
                   data_edges=metrics.data_edges,
                   site_edges=metrics.site_edges,
                   pages=metrics.pages)
    assert metrics.pages > people
