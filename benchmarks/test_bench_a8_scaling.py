"""Experiment A8 (extension): end-to-end scaling.

Not a paper table — evidence that the reproduction scales the way the
architecture promises: site-graph construction and HTML generation grow
near-linearly in data size, so the 400-person AT&T-scale site of T1 is
nowhere near a cliff.  The windowed-sampling overhead test rides along
here because it asks the same question of the SLO layer: does a
background :class:`~repro.obs.metrics.WindowedSeries` sampler (the
substrate burn-rate alerting reads) tax a full build measurably?
"""

import shutil
import time

import pytest

from repro import obs
from repro.datagen import build_org_mediator
from repro.obs.slo import SLOEvaluator
from repro.sites import build_org_site

EXPERIMENT = "A8 (extension): end-to-end scaling"

#: Rounds for the sampling-overhead comparison (interleaved off/on).
SLO_ROUNDS = 5
SLO_PEOPLE = 80

#: Generous in-test bar — the honest number is ``slo_overhead_pct`` in
#: BENCH_core.json (acceptance: under 5%); a handful of runs has to
#: survive CI jitter.
MAX_SLO_OVERHEAD_FACTOR = 1.5


@pytest.mark.parametrize("people", [100, 400, 1000])
def test_org_site_scaling(benchmark, experiment, people, tmp_path):
    data = build_org_mediator(people=people,
                              projects=max(8, people // 20),
                              publications=people // 8).warehouse()

    def build_and_generate():
        site = build_org_site(data=data.copy("ORGDATA"))
        site.generate(str(tmp_path))
        return site

    site = benchmark.pedantic(build_and_generate, rounds=2,
                              warmup_rounds=0, iterations=1)
    metrics = site.metrics()
    experiment.row(people=people,
                   data_edges=metrics.data_edges,
                   site_edges=metrics.site_edges,
                   pages=metrics.pages)
    assert metrics.pages > people


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_windowed_sampling_overhead(experiment, tmp_path):
    """A tight-interval SLO evaluation loop (sampling every counter,
    gauge and histogram into the windowed ring each tick) must not tax
    a full site build measurably.

    Off and on rounds are interleaved so both p50s see the same machine
    state; the conftest turns the span medians into the committed
    ``slo_overhead_pct`` metric (acceptance bar: under 5%).  The
    evaluator ticks every 20 ms here — 250x the production 5 s step —
    so the committed number is a hard upper bound on real overhead.
    """

    def build(out_dir: str) -> None:
        shutil.rmtree(out_dir, ignore_errors=True)
        site = build_org_site(people=SLO_PEOPLE, seed=10)
        report = site.build_site(out_dir)
        assert report.pages_rendered > 0

    off_dir, on_dir = str(tmp_path / "off"), str(tmp_path / "on")
    build(off_dir)  # warm-up outside the timed spans

    recorder = obs.get_recorder()
    off_seconds, on_seconds = [], []
    ticks = 0
    for _ in range(SLO_ROUNDS):
        start = time.perf_counter()
        with obs.timed("site.build_slo_off"):
            build(off_dir)
        off_seconds.append(time.perf_counter() - start)

        evaluator = SLOEvaluator(recorder, step=0.02, retention=120.0)
        evaluator.start_background(interval=0.02)
        try:
            start = time.perf_counter()
            with obs.timed("site.build_slo_on"):
                build(on_dir)
            on_seconds.append(time.perf_counter() - start)
        finally:
            evaluator.stop()
        ticks += evaluator.ticks

    assert ticks > 0, "the background evaluator never sampled"
    off_p50, on_p50 = _median(off_seconds), _median(on_seconds)
    overhead_pct = ((on_p50 - off_p50) / off_p50 * 100) if off_p50 \
        else 0.0
    assert on_p50 <= off_p50 * MAX_SLO_OVERHEAD_FACTOR, (
        f"build under sampling {on_p50:.3f}s vs {off_p50:.3f}s off")
    experiment.row(mode="sampling off", seconds=f"{off_p50:.3f}")
    experiment.row(mode="sampling on", seconds=f"{on_p50:.3f}",
                   note=f"{overhead_pct:+.1f}% ({ticks} ticks)")
