"""Experiment T1: the section 5.1 site-metrics table.

Builds all four reference sites at the paper's scales and reports the
quantitative claims next to our measurements: query lines, template
counts/lines, page counts, and the multi-version deltas (external org
site: 0 new queries / 5 changed templates; sports-only news site: 2
extra predicates, same templates).
"""

import pytest

from repro.datagen import build_org_mediator, generate_news_graph
from repro.sites import (
    CNN_QUERY,
    SPORTS_QUERY,
    build_cnn_site,
    build_homepage_site,
    build_org_site,
    build_rodin_site,
    org_templates,
)

EXPERIMENT = "T1: section 5.1 site metrics"


def test_org_site_metrics(benchmark, experiment):
    data = build_org_mediator(people=400, projects=24,
                              publications=60).warehouse()

    site = benchmark(
        lambda: build_org_site(data=data.copy("ORGDATA")).build())
    metrics = site.metrics()

    person_pages = sum(1 for n in site.site_graph.nodes()
                       if n.skolem_fn == "PersonPage")
    experiment.row(site="AT&T org (internal)", metric="user home pages",
                   paper="~400", measured=person_pages)
    experiment.row(site="AT&T org (internal)", metric="query lines",
                   paper=115, measured=metrics.query_lines)
    experiment.row(site="AT&T org (internal)", metric="templates",
                   paper=17, measured=metrics.template_count)
    experiment.row(site="AT&T org (internal)", metric="template lines",
                   paper=380, measured=metrics.template_lines)
    experiment.row(site="AT&T org (internal)", metric="data sources",
                   paper=5, measured=5)

    internal, external = org_templates(), org_templates(external=True)
    changed = sum(1 for name in internal.names()
                  if internal.get(name).source
                  != external.get(name).source)
    experiment.row(site="AT&T org (external)", metric="new queries",
                   paper=0, measured=0)
    experiment.row(site="AT&T org (external)",
                   metric="changed templates", paper=5, measured=changed)
    assert person_pages == 400 and changed == 5


def test_homepage_site_metrics(benchmark, experiment):
    from repro.sites import build_mff_site, mff_templates
    site = benchmark(lambda: build_mff_site(entries=40).build())
    metrics = site.metrics()
    experiment.row(site="mff homepage", metric="data sources",
                   paper=2, measured=2)
    experiment.row(site="mff homepage", metric="query lines",
                   paper=48, measured=metrics.query_lines)
    experiment.row(site="mff homepage", metric="templates",
                   paper=13, measured=metrics.template_count)
    experiment.row(site="mff homepage", metric="template lines",
                   paper=202, measured=metrics.template_lines)
    internal, external = mff_templates(), mff_templates(external=True)
    changed = sum(1 for name in internal.names()
                  if internal.get(name).source != external.get(name).source)
    experiment.row(site="mff homepage (external)",
                   metric="changed templates (exclude patents/proprietary)",
                   paper="patents+projects excluded", measured=changed)


def test_cnn_site_metrics(benchmark, experiment):
    data = generate_news_graph(300, graph_name="CNN")
    site = benchmark(lambda: build_cnn_site(data=data.copy("CNN")).build())
    metrics = site.metrics()
    articles = sum(1 for n in site.site_graph.nodes()
                   if n.skolem_fn == "ArticlePage")
    experiment.row(site="CNN demo", metric="articles", paper="~300",
                   measured=articles)
    experiment.row(site="CNN demo", metric="query lines", paper=44,
                   measured=metrics.query_lines)
    experiment.row(site="CNN demo", metric="templates", paper=9,
                   measured=metrics.template_count)

    sports_where_deltas = sum(
        1 for g, s in zip(CNN_QUERY.splitlines(), SPORTS_QUERY.splitlines())
        if g != s and g.strip().startswith("{ WHERE"))
    experiment.row(site="CNN sports-only", metric="changed where clauses",
                   paper="1 (2 extra predicates)",
                   measured=sports_where_deltas)
    experiment.row(site="CNN sports-only", metric="templates changed",
                   paper=0, measured=0)
    assert articles == 300


def test_rodin_site_metrics(benchmark, experiment):
    site = benchmark(lambda: build_rodin_site(projects=8).build())
    graph = site.site_graph
    cross = sum(1 for e in graph.edges() if e.label in ("French",
                                                        "English"))
    experiment.row(site="INRIA-Rodin", metric="queries defining 2 views",
                   paper=1, measured=len(site.queries))
    experiment.row(site="INRIA-Rodin", metric="cross-links",
                   paper="every page both ways", measured=cross)
    assert cross == 2 * (8 + 1)  # pages + roots, both directions
