"""Experiment A7 (extension): incremental site-graph updates.

The paper lists "computing incremental updates of site graphs" as an
open problem (section 6, [FER 98c]).  Our :func:`repro.site.refresh_site`
implements the materialized-site half; this benchmark shows the property
that makes it worthwhile: after a small data change, the number of
rewritten HTML files is proportional to the change, not the site size.
"""

import os

import pytest

from repro.datagen import generate_bibtex
from repro.graph import Atom, Oid
from repro.site import refresh_site
from repro.sites.homepage import FIG3_QUERY, fig7_templates
from repro.struql import QueryEngine
from repro.templates import HtmlGenerator
from repro.wrappers import BibTexWrapper

EXPERIMENT = "A7 (extension): incremental site updates"


def _built_site(entries: int, out_dir: str):
    data = BibTexWrapper().wrap(generate_bibtex(entries, seed=6),
                                "BIBTEX")
    site = QueryEngine().evaluate(FIG3_QUERY, data).output
    HtmlGenerator(site, fig7_templates()).generate_site(out_dir)
    return data, site


@pytest.mark.parametrize("entries", [60, 240])
def test_refresh_proportional_to_change(benchmark, experiment, entries,
                                        tmp_path):
    data, old_site = _built_site(entries, str(tmp_path))
    total_pages = len(os.listdir(tmp_path))

    # One new publication in one existing year / one existing category.
    pub = Oid("pub_new")
    data.add_to_collection("Publications", pub)
    data.add_edge(pub, "title", Atom.string("Incremental"))
    data.add_edge(pub, "year", data.get_one(Oid("pub1"), "year"))
    data.add_edge(pub, "category",
                  data.get_one(Oid("pub1"), "category"))
    data.add_edge(pub, "abstract", Atom.file("a/new.txt"))

    result = benchmark(lambda: refresh_site(
        FIG3_QUERY, data, old_site, fig7_templates(), str(tmp_path)))

    rewritten = result.pages_rewritten
    experiment.row(site_pages=total_pages,
                   change="1 new publication",
                   pages_rewritten=rewritten,
                   fraction=f"{rewritten / total_pages:.0%}")
    # Proportionality: the rewrite set stays small and does not grow
    # with site size (root + abstracts + 1 year + 1 category + new
    # abstract page-ish).
    assert rewritten <= 8
    assert rewritten < total_pages


def test_full_rebuild_comparison(benchmark, experiment, tmp_path):
    data, old_site = _built_site(240, str(tmp_path))

    def full_rebuild():
        site = QueryEngine().evaluate(FIG3_QUERY, data).output
        return HtmlGenerator(site, fig7_templates()).generate_site(
            str(tmp_path))

    written = benchmark(full_rebuild)
    experiment.row(site_pages=len(written),
                   change="none (baseline rebuild)",
                   pages_rewritten=len(written),
                   fraction="100%")
