"""Benchmark harness plumbing.

Besides pytest-benchmark timings, every experiment records
paper-vs-measured rows through the ``experiment`` fixture; a terminal
summary prints them as tables at the end of the run, which is the
console form of EXPERIMENTS.md.

Every benchmark session also runs with the observability layer
(:mod:`repro.obs`) enabled: each test body becomes a top-level span.
``BENCH_obs.json`` gets per-span-name aggregates (count / total / p50 /
p95 / max seconds) plus the metric registry and per-test phase timings
— NOT the raw span forest, which for a benchmark session runs to tens
of MB and has no business in git (CI enforces a 256 KB cap on committed
``BENCH_*.json``).  A second, even smaller ``BENCH_core.json`` is
written in a committed format — a handful of stable metric names with
p50 seconds — so regression tracking across PRs diffs one tiny file.
"""

from __future__ import annotations

import json
import os
import statistics
from collections import OrderedDict

import pytest

from repro import obs

#: Stable metric name -> the span name whose durations define it.
CORE_SPAN_METRICS = {
    "index_build_p50_s": "index.build",
    "struql_eval_p50_s": "struql.query",
    "struql_opt_p50_s": "struql.optimize",
    "full_build_p50_s": "site.build",
    "site_build_p50_s": "site.build_cold",
    "site_rebuild_p50_s": "site.build_warm",
    "lineage_off_p50_s": "site.build_lineage_off",
    "lineage_on_p50_s": "site.build_lineage_on",
    "slo_off_p50_s": "site.build_slo_off",
    "slo_on_p50_s": "site.build_slo_on",
    "site_cold_serve_p50_s": "site.serve_cold",
    "site_hot_serve_p50_s": "site.serve_hot",
}

#: Stable metric name -> the histogram whose p50 defines it.
CORE_HISTOGRAM_METRICS = {
    "page_render_p50_s": "templates.render_seconds",
}


def _core_document(recorder: obs.TraceRecorder) -> dict:
    """The committed-format regression metrics for one session."""
    durations: dict[str, list[float]] = {n: [] for n in CORE_SPAN_METRICS}
    for root in recorder.roots:
        for span in root.walk():
            for metric, span_name in CORE_SPAN_METRICS.items():
                if span.name == span_name:
                    durations[metric].append(span.seconds)
    metrics: dict[str, float | int] = {}
    for metric, values in durations.items():
        metrics[metric] = statistics.median(values) if values else 0.0
        metrics[metric.replace("_p50_s", "_count")] = len(values)
    histograms = recorder.metrics.as_dict()["histograms"]
    for metric, hist_name in CORE_HISTOGRAM_METRICS.items():
        summary = histograms.get(hist_name, {})
        metrics[metric] = summary.get("p50", 0.0)
        metrics[metric.replace("_p50_s", "_count")] = summary.get(
            "count", 0)
    # A10: lineage recording overhead as a percentage.  Informational
    # (only *_p50_s names gate regressions in ``repro bench compare``);
    # the acceptance bar is <= 10%.
    off = metrics.get("lineage_off_p50_s", 0.0)
    on = metrics.get("lineage_on_p50_s", 0.0)
    if off:
        metrics["lineage_overhead_pct"] = round((on - off) / off * 100, 2)
    # A8 rider: windowed SLO sampling overhead (acceptance: under 5%).
    slo_off = metrics.get("slo_off_p50_s", 0.0)
    slo_on = metrics.get("slo_on_p50_s", 0.0)
    if slo_off:
        metrics["slo_overhead_pct"] = round(
            (slo_on - slo_off) / slo_off * 100, 2)
    return {"bench": "core", "schema": 1, "metrics": metrics}


def _span_aggregates(recorder: obs.TraceRecorder) -> dict:
    """Per-span-name duration aggregates over the whole span forest."""
    durations: dict[str, list[float]] = {}
    for root in recorder.roots:
        for span in root.walk():
            durations.setdefault(span.name, []).append(span.seconds)
    aggregates: dict[str, dict] = {}
    for name in sorted(durations):
        values = sorted(durations[name])
        rank95 = min(len(values) - 1, round(0.95 * (len(values) - 1)))
        aggregates[name] = {
            "count": len(values),
            "total_s": round(sum(values), 6),
            "p50_s": round(statistics.median(values), 6),
            "p95_s": round(values[rank95], 6),
            "max_s": round(values[-1], 6),
        }
    return aggregates


def _obs_document(recorder: obs.TraceRecorder) -> dict:
    """The compact observability summary committed as BENCH_obs.json."""
    metrics = recorder.metrics.as_dict()
    histograms = {
        name: {key: summary.get(key) for key in
               ("count", "mean", "p50", "p90", "p95", "p99", "max", "sum")}
        for name, summary in metrics.get("histograms", {}).items()}
    return {
        "bench": "obs",
        "schema": 2,
        "spans": _span_aggregates(recorder),
        "counters": metrics.get("counters", {}),
        "gauges": metrics.get("gauges", {}),
        "histograms": histograms,
        "phases": [
            {"phase": root.name, "seconds": round(root.seconds, 6),
             **root.attributes}
            for root in recorder.roots],
    }

#: experiment id -> list of row dicts, in insertion order.
_REPORT: "OrderedDict[str, list[dict]]" = OrderedDict()

_RECORDER: obs.TraceRecorder | None = None


def pytest_configure(config):
    global _RECORDER
    _RECORDER = obs.enable()


@pytest.fixture(autouse=True)
def _obs_phase(request):
    """Wrap each benchmark test in a span named after it."""
    with obs.timed(request.node.name, module=request.module.__name__):
        yield


def pytest_sessionfinish(session):
    global _RECORDER
    if _RECORDER is None:
        return
    path = os.path.join(str(session.config.rootpath), "BENCH_obs.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_obs_document(_RECORDER), handle, indent=2)
        handle.write("\n")
    core_path = os.path.join(str(session.config.rootpath),
                             "BENCH_core.json")
    with open(core_path, "w", encoding="utf-8") as handle:
        json.dump(_core_document(_RECORDER), handle, indent=2)
        handle.write("\n")
    obs.disable()
    _RECORDER = None


class ExperimentRecorder:
    """Collects result rows for one experiment id."""

    def __init__(self, experiment_id: str) -> None:
        self.experiment_id = experiment_id

    def row(self, **values) -> None:
        """Record one result row (printed in the terminal summary)."""
        _REPORT.setdefault(self.experiment_id, []).append(values)


@pytest.fixture
def experiment(request) -> ExperimentRecorder:
    """Recorder named after the test module's experiment id."""
    module = request.module.__name__
    exp_id = getattr(request.module, "EXPERIMENT", module)
    return ExperimentRecorder(exp_id)


def _format_table(rows: list[dict]) -> str:
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(
            str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def pytest_terminal_summary(terminalreporter):
    if not _REPORT:
        return
    terminalreporter.write_sep("=", "experiment results (paper vs measured)")
    for exp_id, rows in _REPORT.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(f"## {exp_id}")
        terminalreporter.write_line(_format_table(rows))
    _REPORT.clear()
