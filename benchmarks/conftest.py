"""Benchmark harness plumbing.

Besides pytest-benchmark timings, every experiment records
paper-vs-measured rows through the ``experiment`` fixture; a terminal
summary prints them as tables at the end of the run, which is the
console form of EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

#: experiment id -> list of row dicts, in insertion order.
_REPORT: "OrderedDict[str, list[dict]]" = OrderedDict()


class ExperimentRecorder:
    """Collects result rows for one experiment id."""

    def __init__(self, experiment_id: str) -> None:
        self.experiment_id = experiment_id

    def row(self, **values) -> None:
        """Record one result row (printed in the terminal summary)."""
        _REPORT.setdefault(self.experiment_id, []).append(values)


@pytest.fixture
def experiment(request) -> ExperimentRecorder:
    """Recorder named after the test module's experiment id."""
    module = request.module.__name__
    exp_id = getattr(request.module, "EXPERIMENT", module)
    return ExperimentRecorder(exp_id)


def _format_table(rows: list[dict]) -> str:
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(
            str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def pytest_terminal_summary(terminalreporter):
    if not _REPORT:
        return
    terminalreporter.write_sep("=", "experiment results (paper vs measured)")
    for exp_id, rows in _REPORT.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(f"## {exp_id}")
        terminalreporter.write_line(_format_table(rows))
    _REPORT.clear()
