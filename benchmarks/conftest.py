"""Benchmark harness plumbing.

Besides pytest-benchmark timings, every experiment records
paper-vs-measured rows through the ``experiment`` fixture; a terminal
summary prints them as tables at the end of the run, which is the
console form of EXPERIMENTS.md.

Every benchmark session also runs with the observability layer
(:mod:`repro.obs`) enabled: each test body becomes a top-level span, so
per-phase timings plus the pipeline's counters and latency histograms
are written to ``BENCH_obs.json`` at the end of the run for
cross-run comparison.  A second, much smaller ``BENCH_core.json`` is
written in a committed format — a handful of stable metric names with
p50 seconds — so regression tracking across PRs diffs one tiny file
instead of the full span forest.
"""

from __future__ import annotations

import json
import os
import statistics
from collections import OrderedDict

import pytest

from repro import obs

#: Stable metric name -> the span name whose durations define it.
CORE_SPAN_METRICS = {
    "index_build_p50_s": "index.build",
    "struql_eval_p50_s": "struql.query",
    "struql_opt_p50_s": "struql.optimize",
    "full_build_p50_s": "site.build",
    "site_build_p50_s": "site.build_cold",
    "site_rebuild_p50_s": "site.build_warm",
}

#: Stable metric name -> the histogram whose p50 defines it.
CORE_HISTOGRAM_METRICS = {
    "page_render_p50_s": "templates.render_seconds",
}


def _core_document(recorder: obs.TraceRecorder) -> dict:
    """The committed-format regression metrics for one session."""
    durations: dict[str, list[float]] = {n: [] for n in CORE_SPAN_METRICS}
    for root in recorder.roots:
        for span in root.walk():
            for metric, span_name in CORE_SPAN_METRICS.items():
                if span.name == span_name:
                    durations[metric].append(span.seconds)
    metrics: dict[str, float | int] = {}
    for metric, values in durations.items():
        metrics[metric] = statistics.median(values) if values else 0.0
        metrics[metric.replace("_p50_s", "_count")] = len(values)
    histograms = recorder.metrics.as_dict()["histograms"]
    for metric, hist_name in CORE_HISTOGRAM_METRICS.items():
        summary = histograms.get(hist_name, {})
        metrics[metric] = summary.get("p50", 0.0)
        metrics[metric.replace("_p50_s", "_count")] = summary.get(
            "count", 0)
    return {"bench": "core", "schema": 1, "metrics": metrics}

#: experiment id -> list of row dicts, in insertion order.
_REPORT: "OrderedDict[str, list[dict]]" = OrderedDict()

_RECORDER: obs.TraceRecorder | None = None


def pytest_configure(config):
    global _RECORDER
    _RECORDER = obs.enable()


@pytest.fixture(autouse=True)
def _obs_phase(request):
    """Wrap each benchmark test in a span named after it."""
    with obs.timed(request.node.name, module=request.module.__name__):
        yield


def pytest_sessionfinish(session):
    global _RECORDER
    if _RECORDER is None:
        return
    path = os.path.join(str(session.config.rootpath), "BENCH_obs.json")
    # Depth 3 = test span + pipeline stage + first detail level; the
    # full forest for a benchmark session runs to tens of MB.
    document = obs.export_state(_RECORDER, max_depth=3)
    document["phases"] = [
        {"phase": root.name, "seconds": root.seconds,
         **root.attributes}
        for root in _RECORDER.roots]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    core_path = os.path.join(str(session.config.rootpath),
                             "BENCH_core.json")
    with open(core_path, "w", encoding="utf-8") as handle:
        json.dump(_core_document(_RECORDER), handle, indent=2)
        handle.write("\n")
    obs.disable()
    _RECORDER = None


class ExperimentRecorder:
    """Collects result rows for one experiment id."""

    def __init__(self, experiment_id: str) -> None:
        self.experiment_id = experiment_id

    def row(self, **values) -> None:
        """Record one result row (printed in the terminal summary)."""
        _REPORT.setdefault(self.experiment_id, []).append(values)


@pytest.fixture
def experiment(request) -> ExperimentRecorder:
    """Recorder named after the test module's experiment id."""
    module = request.module.__name__
    exp_id = getattr(request.module, "EXPERIMENT", module)
    return ExperimentRecorder(exp_id)


def _format_table(rows: list[dict]) -> str:
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(
            str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def pytest_terminal_summary(terminalreporter):
    if not _REPORT:
        return
    terminalreporter.write_sep("=", "experiment results (paper vs measured)")
    for exp_id, rows in _REPORT.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(f"## {exp_id}")
        terminalreporter.write_line(_format_table(rows))
    _REPORT.clear()
