"""Experiment F2: the Fig 2 data graph.

Regenerates the paper's Fig 2 fragment from its DDL text and checks the
described shape (objects, collection membership, typed file attributes,
irregular attributes).  The benchmark measures DDL parsing throughput,
the wrapper-to-repository ingestion path.
"""

from repro.ddl import parse_ddl
from repro.graph import AtomType, Oid
from repro.sites.homepage import FIG2_DDL

EXPERIMENT = "F2: Fig 2 data graph"


def test_fig2_parse(benchmark, experiment):
    graph = benchmark(parse_ddl, FIG2_DDL, "BIBTEX")

    assert graph.collection("Publications") == [Oid("pub1"), Oid("pub2")]
    assert graph.get_one(Oid("pub1"),
                         "postscript").type is AtomType.POSTSCRIPT_FILE
    assert graph.get_one(Oid("pub1"), "month") is not None
    assert graph.get_one(Oid("pub2"), "month") is None

    experiment.row(artifact="objects", paper=2, measured=graph.node_count)
    experiment.row(artifact="collections", paper=1,
                   measured=len(graph.collection_names()))
    experiment.row(artifact="pub1 attrs (title/author×2/year/month/"
                            "journal/pub-type/abstract/postscript/"
                            "volume/category×2)",
                   paper=12,
                   measured=len(graph.out_edges(Oid("pub1"))))
    experiment.row(artifact="pub2 attrs", paper=10,
                   measured=len(graph.out_edges(Oid("pub2"))))


def test_fig2_roundtrip(benchmark, experiment):
    from repro.ddl import write_ddl
    graph = parse_ddl(FIG2_DDL, "BIBTEX")

    def roundtrip():
        return parse_ddl(write_ddl(graph), "BIBTEX")

    back = benchmark(roundtrip)
    assert back.edge_count == graph.edge_count
    experiment.row(artifact="DDL writer round trip",
                   paper="lossless", measured="lossless")
