"""Experiment F5: the Fig 5 site schema.

Derives the site schema from the Fig 3 query and checks it edge-for-edge
against the figure, including the (Q, L, X, Y) edge labels; benchmarks
schema derivation and query recovery.
"""

from repro.site import NS, build_site_schema
from repro.sites.homepage import FIG3_QUERY
from repro.struql import QueryEngine, parse_query
from repro.sites.homepage import fig2_data

EXPERIMENT = "F5: Fig 5 site schema"

#: Every non-NS edge of Fig 5 as (source, rendered label, target).
FIG5_EDGES = {
    ("RootPage", '(true, "AbstractsPage", [], [])', "AbstractsPage"),
    ("RootPage", '(Q1 ^ Q2, "YearPage", [], [v])', "YearPage"),
    ("RootPage", '(Q1 ^ Q3, "CategoryPage", [], [v])', "CategoryPage"),
    ("YearPage", '(Q1 ^ Q2, "Paper", [v], [x])', "PaperPresentation"),
    ("CategoryPage", '(Q1 ^ Q3, "Paper", [v], [x])', "PaperPresentation"),
    ("AbstractsPage", '(Q1, "Abstract", [], [x])', "AbstractPage"),
    ("PaperPresentation", '(Q1, "Abstract", [x], [x])', "AbstractPage"),
}


def test_fig5_schema(benchmark, experiment):
    query = parse_query(FIG3_QUERY)
    schema = benchmark(build_site_schema, query)

    mine = {(e.source, e.render(), e.target) for e in schema.edges
            if e.target != NS}
    assert mine == FIG5_EDGES

    experiment.row(artifact="schema nodes (6 Skolem fns + N_S)",
                   paper=7, measured=len(schema.nodes))
    experiment.row(artifact="non-N_S edges", paper=len(FIG5_EDGES),
                   measured=len(mine))
    experiment.row(artifact="roots", paper="RootPage",
                   measured=",".join(schema.roots()))


def test_schema_recovers_equivalent_query(benchmark, experiment):
    """'The site schema is equivalent to the original query'."""
    data = fig2_data()
    schema = build_site_schema(FIG3_QUERY)
    engine = QueryEngine()

    recovered_text = benchmark(schema.recover_query)
    recovered = parse_query(recovered_text)
    original = engine.evaluate(FIG3_QUERY, data).output
    again = engine.evaluate(recovered, data).output
    assert set(original.edges()) == set(again.edges())
    experiment.row(artifact="query recovered from schema",
                   paper="equivalent", measured="identical site graph")
