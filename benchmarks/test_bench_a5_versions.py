"""Experiment A5: the multiple-versions claim (section 5.2).

"STRUDEL is most effective when multiple versions of a site are built
from the same underlying data.  For instance, once we built AT&T's
internal research site, building the external version was trivial."

We measure "trivial" three ways: lines changed, wall-clock build time
for the second version, and whether the site graph is shared — for the
declarative system and for the procedural baseline.
"""

from repro.baseline import (
    generate_homepage_site,
    generate_homepage_site_external,
    generate_news_site,
    generate_news_site_sports,
    source_lines,
)
from repro.datagen import build_org_mediator
from repro.sites import build_org_site, org_templates

EXPERIMENT = "A5: cost of a second site version"


def test_external_org_site_build(benchmark, experiment):
    data = build_org_mediator(people=150, projects=15,
                              publications=30).warehouse()
    internal = build_org_site(data=data.copy("ORGDATA"))
    internal.build()

    external = benchmark(
        lambda: build_org_site(data=data.copy("ORGDATA"),
                               external=True).build())

    internal_t, external_t = org_templates(), org_templates(external=True)
    changed_templates = [n for n in internal_t.names()
                         if internal_t.get(n).source
                         != external_t.get(n).source]
    changed_lines = sum(
        abs(len(internal_t.get(n).source.splitlines())
            - len(external_t.get(n).source.splitlines()))
        + sum(1 for a, b in zip(internal_t.get(n).source.splitlines(),
                                external_t.get(n).source.splitlines())
              if a != b)
        for n in changed_templates)

    same_structure = (internal.site_graph.edge_count
                      == external.site_graph.edge_count)
    experiment.row(system="STRUDEL",
                   change="org internal -> external",
                   queries_changed=0,
                   templates_changed=len(changed_templates),
                   approx_lines=changed_lines,
                   site_graph="shared" if same_structure else "rebuilt")
    assert len(changed_templates) == 5 and same_structure


def test_procedural_second_versions(experiment, benchmark):
    benchmark(lambda: (source_lines(generate_homepage_site),
                       source_lines(generate_news_site_sports)))
    homepage_lines = source_lines(generate_homepage_site)
    homepage_ext_lines = source_lines(generate_homepage_site_external)
    news_lines = source_lines(generate_news_site)
    sports_lines = source_lines(generate_news_site_sports)
    experiment.row(system="CGI baseline",
                   change="homepage internal -> external",
                   queries_changed="n/a",
                   templates_changed="n/a",
                   approx_lines=homepage_ext_lines,
                   site_graph=f"duplicated generator "
                              f"(orig {homepage_lines} lines)")
    experiment.row(system="CGI baseline",
                   change="news -> sports-only",
                   queries_changed="n/a",
                   templates_changed="n/a",
                   approx_lines=sports_lines,
                   site_graph=f"duplicated generator "
                              f"(orig {news_lines} lines)")
    # The paper's shape: the declarative delta is an order of magnitude
    # smaller than rewriting the generator.
    assert homepage_ext_lines > 30 and sports_lines > 20
