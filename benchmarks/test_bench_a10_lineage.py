"""Experiment A10 (extension): provenance recording overhead.

PR 8 threads a lineage recorder through the whole derivation chain —
source stamps at the mediator, Skolem mints in the query engine, link
dependencies in construction, and page/template edges in the
generator.  The disabled path is a null object (one attribute check per
Skolem mint), so an unobserved build should cost the same as before the
feature existed; the enabled path buys ``repro why`` and the freshness
gauges for bounded bookkeeping.

This benchmark builds the org example site with lineage off and on
under the spans ``site.build_lineage_off`` / ``site.build_lineage_on``;
the conftest turns their p50s into the committed
``lineage_overhead_pct`` metric in ``BENCH_core.json``.  The acceptance
bar is overhead within 10% — asserted loosely here (cold-VM jitter) and
tracked precisely by the committed number.
"""

import shutil

from repro import obs
from repro.obs.lineage import disable_lineage, lineage_recording
from repro.sites.org import build_org_site

EXPERIMENT = "A10 (extension): lineage recording overhead"

PEOPLE = 80
ROUNDS = 5

#: Generous in-test bar — the honest number is lineage_overhead_pct in
#: BENCH_core.json; a handful of runs has to survive CI jitter.
MAX_OVERHEAD_FACTOR = 1.5


def _build(out_dir: str) -> None:
    shutil.rmtree(out_dir, ignore_errors=True)
    site = build_org_site(people=PEOPLE, seed=10)
    report = site.build_site(out_dir)
    assert report.pages_rendered > 0


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_lineage_overhead(experiment, tmp_path):
    """Building with lineage recording on stays within a small factor
    of the lineage-off build, and the recorded index actually resolves
    every generated page.

    Off and on rounds are interleaved (not two separate batches) so the
    two p50s see the same machine state; the conftest turns the span
    medians into the committed ``lineage_overhead_pct`` metric.
    """
    import time

    off_dir, on_dir = str(tmp_path / "off"), str(tmp_path / "on")
    disable_lineage()  # make sure the off runs really are off

    # Warm-up both paths outside the timed spans (imports, template
    # compile, allocator growth).
    _build(off_dir)
    with lineage_recording():
        _build(on_dir)

    off_seconds, on_seconds = [], []
    lineage_len = 0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        with obs.timed("site.build_lineage_off"):
            _build(off_dir)
        off_seconds.append(time.perf_counter() - start)

        with lineage_recording() as lineage:
            start = time.perf_counter()
            with obs.timed("site.build_lineage_on"):
                _build(on_dir)
            on_seconds.append(time.perf_counter() - start)
            # The rendered pages were recorded during the build; every
            # one must resolve to a non-empty derivation chain.
            lineage_len = len(lineage)
            pages = lineage.page_records()
            assert pages
            for page in pages:
                doc = lineage.why(page.url)
                assert doc and doc.get("derivation"), \
                    f"no derivation for {page.url}"

    assert lineage_len > 0
    off_p50, on_p50 = _median(off_seconds), _median(on_seconds)
    overhead_pct = ((on_p50 - off_p50) / off_p50 * 100) if off_p50 else 0.0
    assert on_p50 <= off_p50 * MAX_OVERHEAD_FACTOR, (
        f"lineage build {on_p50:.3f}s vs {off_p50:.3f}s off")
    experiment.row(mode="lineage off", seconds=f"{off_p50:.3f}")
    experiment.row(mode="lineage on", seconds=f"{on_p50:.3f}",
                   note=f"{overhead_pct:+.1f}% (records={lineage_len})")
