"""Experiment A11: materialized-view hot serving vs uncached evaluation.

The serving-path half of the paper's caching story: once a page body
is a materialized view, a warm request is a dictionary lookup instead
of a click-time query evaluation plus render.  ``site_hot_serve_p50_s``
and ``site_cold_serve_p50_s`` (spans ``site.serve_hot`` /
``site.serve_cold``) land in BENCH_core.json so ``repro bench
compare`` gates the hot path across PRs; the acceptance bar is hot
serving at least 5x faster than cold.
"""

import random

from repro import obs
from repro.datagen import generate_bibtex
from repro.site import DynamicSiteServer
from repro.sites.homepage import FIG3_QUERY, fig7_templates
from repro.struql.matview import ChangeSummary
from repro.wrappers import BibTexWrapper

EXPERIMENT = "A11: matview hot vs cold serving"

ENTRIES = 120
SAMPLES = 60


def _data():
    return BibTexWrapper().wrap(generate_bibtex(ENTRIES, seed=5),
                                "BIBTEX")


def _sample_pages(server, count):
    rng = random.Random(11)
    responses = server.crawl(limit=count * 2)
    return [rng.choice(responses).oid for _ in range(count)]


def test_hot_vs_cold_serve(experiment):
    data = _data()
    server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
    pages = _sample_pages(server, SAMPLES)

    # Cold: every request pays the click-time evaluation — the body
    # views (and underlying page/bindings caches) are dropped first.
    cold_total = 0.0
    for page in pages:
        server.invalidate()
        with obs.timed("site.serve_cold") as span:
            response = server.request(page)
        assert response.status == 200
        cold_total += span.seconds

    # Hot: the same pages, served from the materialized body views.
    for page in pages:
        server.request(page)  # ensure every view is materialized
    hot_total = 0.0
    for page in pages:
        with obs.timed("site.serve_hot") as span:
            response = server.request(page)
        assert response.status == 200
        hot_total += span.seconds

    speedup = cold_total / hot_total if hot_total else float("inf")
    experiment.row(mode="cold (invalidate before each)",
                   pages=len(pages),
                   note=f"{cold_total / len(pages) * 1000:.3f} ms/page")
    experiment.row(mode="hot (materialized views)", pages=len(pages),
                   note=f"{hot_total / len(pages) * 1000:.4f} ms/page, "
                        f"{speedup:.0f}x faster")
    # The acceptance bar: hot serves at least 5x faster than cold.
    assert speedup >= 5, f"hot/cold speedup only {speedup:.1f}x"


def test_selective_invalidation_preserves_hot_path(experiment):
    """After a narrow change, unaffected views keep serving hot: the
    differential advantage of footprint-driven invalidation over the
    old whole-cache drop."""
    data = _data()
    server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
    pages = _sample_pages(server, SAMPLES)
    for page in pages:
        server.request(page)

    hits_before = server.matviews.stats["hits"]
    # A change confined to a collection nothing reads: every body view
    # survives, so every request below is a view hit.
    server.invalidate(ChangeSummary.for_collections("Unrelated"))
    with obs.timed("site.serve_after_narrow_change"):
        for page in pages:
            assert server.request(page).status == 200
    hits = server.matviews.stats["hits"] - hits_before
    experiment.row(mode="after narrow change", pages=len(pages),
                   note=f"{hits}/{len(pages)} served from views")
    assert hits == len(pages)
