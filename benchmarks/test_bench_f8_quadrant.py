"""Experiment F8: the Fig 8 suitability quadrant.

Fig 8 places Web-site tools on two axes — quantity of data and
complexity of structure (measured as link clauses in the site-definition
query, or CGI scripts in current practice) — and claims STRUDEL wins in
the high-data/high-complexity corner.

We make the claim measurable: for sites along both axes we compare the
*specification size* (StruQL query lines + template lines) against the
hand-written procedural baseline's program lines, and the *cost of a
second version* (lines changed).  The declarative advantage should grow
with structural complexity and be independent of data quantity — which
is exactly the quadrant's shape.
"""

from repro.baseline import (
    HOMEPAGE_HELPERS,
    NEWS_HELPERS,
    generate_homepage_site,
    generate_homepage_site_external,
    generate_news_site,
    generate_news_site_sports,
    source_lines,
)
from repro.datagen import generate_bibtex, generate_news_graph
from repro.sites import (
    CNN_QUERY,
    SPORTS_QUERY,
    build_cnn_site,
    build_homepage_site,
)
from repro.wrappers import BibTexWrapper

EXPERIMENT = "F8: Fig 8 suitability quadrant"


def _nonblank(text: str) -> int:
    return sum(1 for line in text.splitlines() if line.strip())


def test_spec_size_vs_structure(experiment, benchmark):
    """Declarative spec size is flat in data size; the procedural
    program is flat too — but the *second version* cost differs
    wildly, and grows with structural complexity for the baseline."""
    # Low structure / small data: the homepage site.
    homepage = build_homepage_site(entries=20)
    homepage_metrics = homepage.metrics()
    declarative_homepage = (homepage_metrics.query_lines
                            + homepage_metrics.template_lines)
    procedural_homepage = source_lines(generate_homepage_site,
                                       *HOMEPAGE_HELPERS)
    # High structure / large data: the news site.
    news_data = generate_news_graph(300, graph_name="CNN")
    news = build_cnn_site(data=news_data.copy("CNN"))
    news_metrics = news.metrics()
    declarative_news = (news_metrics.query_lines
                        + news_metrics.template_lines)
    procedural_news = source_lines(generate_news_site, *NEWS_HELPERS)

    benchmark(lambda: build_cnn_site(data=news_data.copy("CNN")).build())

    experiment.row(site="homepage (small data, simple structure)",
                   axis_data=homepage.data.edge_count,
                   axis_structure=homepage_metrics.link_clauses,
                   declarative_lines=declarative_homepage,
                   procedural_lines=procedural_homepage)
    experiment.row(site="news (large data, complex structure)",
                   axis_data=news.data.edge_count,
                   axis_structure=news_metrics.link_clauses,
                   declarative_lines=declarative_news,
                   procedural_lines=procedural_news)

    # The quadrant's prediction: one version costs about the same
    # either way, but as soon as the high-complexity corner needs its
    # second version, the declarative total wins (templates and site
    # graph are shared; the baseline duplicates the generator).
    declarative_both = declarative_news + 3  # the sports-query delta
    procedural_both = procedural_news + source_lines(
        generate_news_site_sports)
    experiment.row(site="news, both versions",
                   axis_data=news.data.edge_count,
                   axis_structure=news_metrics.link_clauses,
                   declarative_lines=declarative_both,
                   procedural_lines=procedural_both)
    assert declarative_both < procedural_both


def test_second_version_cost(experiment, benchmark):
    """The decisive Fig 8 signal: producing a second site version."""
    # Declarative: the sports site = 2 edited where clauses; the
    # external homepage = template-only changes.
    internal_for_timing = build_homepage_site(entries=20)
    benchmark(lambda: build_homepage_site(
        data=internal_for_timing.data, external=True).build())
    sports_delta = sum(
        1 for g, s in zip(CNN_QUERY.splitlines(), SPORTS_QUERY.splitlines())
        if g != s)
    internal = build_homepage_site(entries=20)
    external = build_homepage_site(data=internal.data, external=True)
    template_delta = sum(
        1 for name in internal.templates.names()
        if internal.templates.get(name).source
        != external.templates.get(name).source)

    # Procedural: a second version is a copy-pasted generator.
    procedural_sports = source_lines(generate_news_site_sports)
    procedural_external = source_lines(generate_homepage_site_external)

    experiment.row(change="news -> sports-only",
                   declarative="3 edited lines",
                   procedural=f"{procedural_sports} new program lines")
    experiment.row(change="homepage internal -> external",
                   declarative=f"{template_delta} changed template(s), "
                               f"0 query changes",
                   procedural=f"{procedural_external} new program lines")
    assert sports_delta <= 3
    assert procedural_sports > 20
    assert template_delta == 1


def test_data_scaling_is_structure_free(experiment, benchmark):
    """Growing the data does not grow the declarative specification."""
    small = build_homepage_site(entries=10)
    large = build_homepage_site(entries=160)
    small_m, large_m = small.metrics(), large.metrics()
    assert small_m.query_lines == large_m.query_lines
    assert small_m.template_lines == large_m.template_lines

    data = BibTexWrapper().wrap(generate_bibtex(160), "BIBTEX")
    benchmark(lambda: build_homepage_site(data=data.copy("BIBTEX")).build())
    experiment.row(site="homepage x16 data",
                   axis_data=large.data.edge_count,
                   axis_structure=large_m.link_clauses,
                   declarative_lines=(large_m.query_lines
                                      + large_m.template_lines),
                   procedural_lines=source_lines(generate_homepage_site,
                                                 *HOMEPAGE_HELPERS))
