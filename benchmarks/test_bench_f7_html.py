"""Experiment F7: the Fig 7 HTML templates.

Renders the homepage site with the Fig 7 templates and checks the
realization rules the paper walks through: PostScript attributes become
links with the title as tag, AbstractPage objects are pages when
referenced from presentations but EMBED into the abstracts page, ORDER
sorts the year list.  Benchmarks full-site HTML generation.
"""

from repro.graph import Atom, Oid
from repro.sites.homepage import FIG3_QUERY, fig2_data, fig7_templates
from repro.struql import QueryEngine
from repro.templates import HtmlGenerator

EXPERIMENT = "F7: Fig 7 HTML templates"


def test_fig7_rendering(benchmark, experiment, tmp_path):
    site = QueryEngine().evaluate(FIG3_QUERY, fig2_data()).output
    generator = HtmlGenerator(site, fig7_templates())

    written = benchmark(generator.generate_site, str(tmp_path))

    root_html = generator.render(Oid.skolem("RootPage", ()))
    year97 = Oid.skolem("YearPage", (Atom.int(1997),))
    year_html = generator.render(year97)
    abstracts_html = generator.render(Oid.skolem("AbstractsPage", ()))

    # PostScript realized as a link tagged with the title (paper §4).
    assert 'href="papers/toplas97.ps.gz"' in year_html
    assert "Specifying Representations" in year_html
    # AbstractPage linked from the presentation...
    assert 'href="AbstractPage_pub1_.html"' in year_html
    # ...but embedded in the abstracts page via EMBED.
    assert "AbstractPage_pub1_.html" not in abstracts_html
    assert "<H3>" in abstracts_html
    # ORDER=ascend on the year list.
    assert root_html.index("1997") < root_html.index("1998")

    experiment.row(artifact="pages written",
                   paper="root+abstracts+2 years+3 categories+2 abstracts",
                   measured=len(written))
    experiment.row(artifact="PostScript realized as link", paper="yes",
                   measured="yes")
    experiment.row(artifact="EMBED overrides page default", paper="yes",
                   measured="yes")
    experiment.row(artifact="templates", paper=6,
                   measured=len(fig7_templates().names()))
