#!/usr/bin/env python3
"""The INRIA-Rodin bilingual site: one query, two cross-linked views.

Demonstrates the paper's multi-view pattern (section 5.1): a single
StruQL query creates an English page and a French page for every object
and cross-links each pair, so every page offers "Version française" /
"English version" navigation.

Run:  python examples/multilingual_site.py [projects] [output_dir]
"""

import sys
import tempfile

from repro.sites import build_rodin_site


def main() -> None:
    projects = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    out_dir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
        prefix="strudel-rodin-")

    site = build_rodin_site(projects=projects)
    graph = site.site_graph
    e_pages = [n for n in graph.nodes() if n.skolem_fn == "EPage"]
    print(f"one query ({site.metrics().query_lines} lines) defined "
          f"{len(e_pages)} English + {len(e_pages)} French pages")

    # Show the cross links for one pair.
    e_page = e_pages[0]
    f_page = graph.get_one(e_page, "French")
    print(f"\ncross links: {e_page} <-> {f_page}")
    print(f"  {e_page} -[French]-> {graph.get_one(e_page, 'French')}")
    print(f"  {f_page} -[English]-> {graph.get_one(f_page, 'English')}")

    written = site.generate(out_dir)
    print(f"\nwrote {len(written)} pages (both languages) to {out_dir}")
    english = site.generator().render(e_page)
    french = site.generator().render(f_page)
    print(f"\n--- {e_page} ---\n{english}")
    print(f"\n--- {f_page} ---\n{french}")


if __name__ == "__main__":
    main()
