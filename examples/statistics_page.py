#!/usr/bin/env python3
"""Aggregation in StruQL: a statistics page for the homepage site.

Demonstrates the grouping/aggregation extension (paper section 5.2: the
query stage "is independently extensible; for example, we could extend
it to include grouping and aggregation"): one query computes per-author
publication counts, per-year counts and corpus totals, and builds a
browsable statistics page from them.

Run:  python examples/statistics_page.py [entries]
"""

import sys
import tempfile

from repro.datagen import generate_bibtex
from repro.struql import QueryEngine
from repro.templates import HtmlGenerator, TemplateSet
from repro.wrappers import BibTexWrapper

STATS_QUERY = """
INPUT BIBTEX
CREATE StatsPage()
// Corpus totals.
{ WHERE Publications(x), count(x) as total
  LINK StatsPage() -> "total" -> total }
// Per-author publication counts; prolific authors get cards.
{ WHERE Publications(x), x -> "author" -> a,
        count(x) per a as pubs, pubs >= 2
  CREATE AuthorCard(a)
  LINK AuthorCard(a) -> "name" -> a,
       AuthorCard(a) -> "pubs" -> pubs,
       StatsPage() -> "Author" -> AuthorCard(a) }
// Per-year counts with the min/max spread.
{ WHERE Publications(x), x -> "year" -> y,
        count(x) per y as n
  CREATE YearBar(y)
  LINK YearBar(y) -> "year" -> y, YearBar(y) -> "n" -> n,
       StatsPage() -> "Year" -> YearBar(y) }
{ WHERE Publications(x), x -> "year" -> y,
        min(y) as first, max(y) as last
  LINK StatsPage() -> "first" -> first,
       StatsPage() -> "last" -> last }
OUTPUT Stats
"""


def templates() -> TemplateSet:
    ts = TemplateSet()
    ts.add("StatsPage", """<HTML><HEAD><TITLE>Statistics</TITLE></HEAD>
<BODY>
<H1>Bibliography statistics</H1>
<P><SFMT @total> publications, <SFMT @first>–<SFMT @last>.</P>
<H2>Publications per year</H2>
<SFMTLIST @Year ORDER=ascend KEY=year FORMAT=EMBED DELIM="<BR>">
<H2>Prolific authors (2+ papers)</H2>
<SFMTLIST @Author ORDER=ascend KEY=name FORMAT=EMBED DELIM="<BR>">
</BODY></HTML>""")
    ts.add("YearBar", """<SFMT @year>: <SFMT @n>""", as_page=False)
    ts.add("AuthorCard", """<B><SFMT @name></B> — <SFMT @pubs> papers""",
           as_page=False)
    return ts


def main() -> None:
    entries = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    data = BibTexWrapper().wrap(generate_bibtex(entries), "BIBTEX")
    result = QueryEngine().evaluate(STATS_QUERY, data)
    generator = HtmlGenerator(result.output, templates())
    page = generator.pages()[0]
    html = generator.render(page)
    print(html)
    out = tempfile.mkdtemp(prefix="strudel-stats-")
    generator.generate_site(out)
    print(f"\n(written to {out})")


if __name__ == "__main__":
    main()
