#!/usr/bin/env python3
"""The CNN demonstration: one database, two sites (section 5.1).

Wraps a synthetic 300-article HTML corpus into a data graph, then builds
*two* sites from the same data — the general news site and the
sports-only site, whose query differs from the general one by exactly
two extra predicates — and reports the paper's metrics for both.

Run:  python examples/news_site.py [articles] [output_dir]
"""

import sys
import tempfile

from repro.datagen import generate_news_graph
from repro.sites import CNN_QUERY, SPORTS_QUERY, build_cnn_site


def main() -> None:
    articles = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    out_dir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
        prefix="strudel-news-")

    data = generate_news_graph(articles, graph_name="CNN")
    print(f"wrapped corpus: {articles} articles, "
          f"{data.edge_count} attribute edges")

    general = build_cnn_site(data=data.copy("CNN"))
    sports = build_cnn_site(data=data.copy("CNN"), sports_only=True)

    for label, site in (("general", general), ("sports-only", sports)):
        metrics = site.metrics()
        print(f"\n{label} site:")
        print(f"  query: {metrics.query_lines} lines, "
              f"{metrics.link_clauses} link clauses")
        print(f"  templates: {metrics.template_count} "
              f"({metrics.template_lines} lines, shared between sites)")
        print(f"  site graph: {metrics.site_nodes} nodes, "
              f"{metrics.site_edges} edges, {metrics.pages} pages")

    # The paper's claim: the derived query differs only in predicates.
    changed = sum(1 for g, s in zip(CNN_QUERY.splitlines(),
                                    SPORTS_QUERY.splitlines()) if g != s)
    print(f"\nderived query: {changed} changed lines "
          f"(two where clauses + the output name)")

    written = sports.generate(out_dir)
    print(f"wrote the sports-only site: {len(written)} pages in {out_dir}")


if __name__ == "__main__":
    main()
