#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the author-homepage site of Figs 2/3/7:

1. parse the Fig 2 data-definition text into a data graph;
2. evaluate the Fig 3 StruQL site-definition query -> site graph;
3. derive and print the site schema (Fig 5);
4. render the Fig 7 HTML templates into a browsable site on disk.

Run:  python examples/quickstart.py [output_dir]
"""

import sys
import tempfile

from repro import QueryEngine, parse_ddl
from repro.site import ReachableFromRoot, Verifier, build_site_schema
from repro.sites.homepage import FIG2_DDL, FIG3_QUERY, fig7_templates
from repro.templates import HtmlGenerator


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="strudel-quickstart-")

    # 1. Data graph (Fig 2).
    data = parse_ddl(FIG2_DDL, "BIBTEX")
    print(f"data graph: {data.node_count} objects, "
          f"{data.edge_count} attribute edges")

    # 2. Site graph (Fig 3 -> Fig 4).
    result = QueryEngine().evaluate(FIG3_QUERY, data)
    site = result.output
    print(f"site graph: {site.node_count} nodes, {site.edge_count} links "
          f"({result.total_bindings} bindings evaluated)")

    # 3. Site schema (Fig 5) and a structural integrity check.
    schema = build_site_schema(FIG3_QUERY)
    print("\nsite schema (Fig 5):")
    print(schema.render())
    report = Verifier([ReachableFromRoot("RootPage")]).verify(
        graph=site, schema=schema)
    print(f"\nintegrity: {'all constraints hold' if report.ok else report}")

    # 4. Browsable site (Fig 7 templates).
    generator = HtmlGenerator(site, fig7_templates())
    written = generator.generate_site(out_dir)
    print(f"\nwrote {len(written)} HTML pages to {out_dir}")
    for oid, path in sorted(written.items(), key=lambda kv: str(kv[0])):
        print(f"  {str(oid):45s} -> {path.rsplit('/', 1)[-1]}")


if __name__ == "__main__":
    main()
