#!/usr/bin/env python3
"""Restructuring a site by rewriting its query (paper section 1).

    STRUDEL's architecture also supports evolution of a Web site's
    structure.  For example, to reorganize pages based on frequent usage
    patterns or to extend the site's content, we simply rewrite the
    site-definition query.

Two site-definition queries over the *same* bibliography: version 1
groups publications under year pages; version 2 — say usage data showed
readers browse by topic — reorganizes by category with per-year
sub-indexes inside each topic page.  Templates and data are untouched;
only the query changes, and the site schema shows the new structure
before anything is built.

Run:  python examples/restructure_site.py [entries]
"""

import sys

from repro.datagen import generate_bibtex
from repro.site import build_site_schema
from repro.struql import QueryEngine
from repro.templates import HtmlGenerator, TemplateSet
from repro.wrappers import BibTexWrapper

QUERY_V1 = """
INPUT BIBTEX
CREATE Root()
{ WHERE Publications(x), x -> l -> v
  CREATE Pres(x)
  LINK Pres(x) -> l -> v
  { WHERE l = "year"
    CREATE YearPage(v)
    LINK YearPage(v) -> "Year" -> v,
         YearPage(v) -> "Paper" -> Pres(x),
         Root() -> "Section" -> YearPage(v) }
}
OUTPUT Site
"""

QUERY_V2 = """
INPUT BIBTEX
CREATE Root()
{ WHERE Publications(x), x -> l -> v
  CREATE Pres(x)
  LINK Pres(x) -> l -> v
  { WHERE l = "category"
    CREATE TopicPage(v)
    LINK TopicPage(v) -> "Name" -> v,
         Root() -> "Section" -> TopicPage(v)
    { WHERE x -> "year" -> y
      CREATE TopicYear(v, y)
      LINK TopicYear(v, y) -> "Year" -> y,
           TopicYear(v, y) -> "Paper" -> Pres(x),
           TopicPage(v) -> "ByYear" -> TopicYear(v, y) }
  }
}
OUTPUT Site
"""


def templates() -> TemplateSet:
    """Shared by both structures: presentation is untouched."""
    ts = TemplateSet()
    ts.add("Root", """<HTML><BODY><H1>Publications</H1>
<SFMTLIST @Section ORDER=ascend WRAP=UL></BODY></HTML>""")
    ts.add("YearPage", """<HTML><BODY><H1><SFMT @Year></H1>
<SFMTLIST @Paper FORMAT=EMBED DELIM="<P>"></BODY></HTML>""")
    ts.add("TopicPage", """<HTML><BODY><H1><SFMT @Name></H1>
<SFMTLIST @ByYear ORDER=ascend KEY=Year WRAP=UL></BODY></HTML>""")
    ts.add("TopicYear", """<HTML><BODY><H1><SFMT @Year></H1>
<SFMTLIST @Paper FORMAT=EMBED DELIM="<P>"></BODY></HTML>""")
    ts.add("Pres", "<SFMT @title> (<SFMT @year>)", as_page=False)
    return ts


def main() -> None:
    entries = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    data = BibTexWrapper().wrap(generate_bibtex(entries), "BIBTEX")
    engine = QueryEngine()
    shared = templates()

    for version, query in (("v1 (by year)", QUERY_V1),
                           ("v2 (by topic, year sub-indexes)", QUERY_V2)):
        schema = build_site_schema(query)
        site = engine.evaluate(query, data).output
        generator = HtmlGenerator(site, shared)
        print(f"=== {version} ===")
        print("site schema:")
        print("  " + schema.render().replace("\n", "\n  "))
        print(f"pages: {len(generator.pages())}, "
              f"links: {site.edge_count}")
        print()

    print("data unchanged, templates unchanged — only the query moved.")


if __name__ == "__main__":
    main()
