#!/usr/bin/env python3
"""Materialize the organization site as an on-disk CLI workspace.

The org site normally lives in code (:mod:`repro.sites.org` plus the
synthetic mediator); this script writes the same site out as the three
file kinds ``python -m repro`` consumes — a serialized data graph, the
StruQL query, and one ``*.tmpl`` file per template — so the full CLI
pipeline (``build``, ``trace``, ``monitor``) can be exercised against
real files, e.g. in CI:

.. code-block:: console

    $ python examples/org_workspace.py 120 ws/
    $ python -m repro trace build --data ws/org.json \\
          --query ws/site.struql --templates ws/templates --out ws/www
    $ python -m repro monitor build --data ws/org.json \\
          --query ws/site.struql --templates ws/templates --out ws/dash

Run:  python examples/org_workspace.py [people] [output_dir]
"""

import os
import sys
import tempfile

from repro.datagen import build_org_mediator
from repro.graph.serialization import graph_to_json
from repro.sites import ORG_QUERY, org_templates


def write_workspace(out_dir: str, people: int = 120) -> dict:
    """Write ``org.json``, ``site.struql`` and ``templates/`` into
    ``out_dir``; returns a manifest of what was written."""
    os.makedirs(out_dir, exist_ok=True)
    data = build_org_mediator(people=people).warehouse()
    data.name = "ORGDATA"

    data_path = os.path.join(out_dir, "org.json")
    with open(data_path, "w", encoding="utf-8") as handle:
        handle.write(graph_to_json(data))

    query_path = os.path.join(out_dir, "site.struql")
    with open(query_path, "w", encoding="utf-8") as handle:
        handle.write(ORG_QUERY)

    templates = org_templates()
    template_dir = os.path.join(out_dir, "templates")
    os.makedirs(template_dir, exist_ok=True)
    for name in templates.names():
        suffix = ".tmpl" if templates.is_page_template(name) \
            else ".component.tmpl"
        path = os.path.join(template_dir, name + suffix)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(templates.get(name).source)

    return {
        "data": data_path,
        "query": query_path,
        "templates": template_dir,
        "template_count": len(templates.names()),
        "nodes": data.node_count,
        "edges": data.edge_count,
    }


def main() -> None:
    people = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    out_dir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
        prefix="strudel-ws-")
    manifest = write_workspace(out_dir, people)
    print(f"workspace in {out_dir}:")
    print(f"  {manifest['data']} ({manifest['nodes']} objects, "
          f"{manifest['edges']} edges)")
    print(f"  {manifest['query']}")
    print(f"  {manifest['templates']}/ "
          f"({manifest['template_count']} templates)")


if __name__ == "__main__":
    main()
