#!/usr/bin/env python3
"""Click-time evaluation: serving a site without materializing it.

Demonstrates the paper's dynamic-evaluation direction (sections 1 and
6): the site-definition query is decomposed into per-page queries; the
server precomputes only the roots and answers each request by running
the page's query at click time, with result caching.  Compares the cost
profile against full materialization.

Run:  python examples/dynamic_site.py [entries]
"""

import sys
import time

from repro.datagen import generate_bibtex
from repro.site import DynamicSiteServer
from repro.sites.homepage import FIG3_QUERY, fig7_templates
from repro.struql import QueryEngine
from repro.templates import HtmlGenerator
from repro.wrappers import BibTexWrapper


def main() -> None:
    entries = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    data = BibTexWrapper().wrap(generate_bibtex(entries), "BIBTEX")
    print(f"data graph: {entries} publications, "
          f"{data.edge_count} edges")

    # Full materialization: pay everything up front.
    started = time.perf_counter()
    site = QueryEngine().evaluate(FIG3_QUERY, data).output
    generator = HtmlGenerator(site, fig7_templates())
    pages = generator.pages()
    for page in pages:
        generator.render(page)
    build_all = time.perf_counter() - started
    print(f"\nmaterialized build: {len(pages)} pages rendered "
          f"in {build_all * 1000:.1f} ms")

    # Click-time: pay per request; first visit computes, revisits hit
    # the query-result cache.
    server = DynamicSiteServer(FIG3_QUERY, data, fig7_templates())
    root = server.roots()[0]
    first = server.request(root)
    revisit = server.request(root)
    print(f"\nclick-time serving:")
    print(f"  first click on {root}: {first.seconds * 1000:.2f} ms")
    print(f"  revisit (cached):      {revisit.seconds * 1000:.2f} ms")

    # A short browsing session touches a fraction of the site.
    session = server.crawl(limit=10)
    computed = server.graph.materialized_count
    total_objects = sum(1 for n in site.nodes()
                        if n.skolem_fn is not None)
    print(f"  10-click session: computed {computed} of "
          f"{total_objects} site objects "
          f"({server.log.mean_latency * 1000:.2f} ms/click mean)")
    print(f"  cache: {server.site.stats['page_cache_hits']} page hits, "
          f"{server.site.stats['bindings_cache_hits']} bindings hits, "
          f"{server.site.stats['unit_evaluations']} unit evaluations")


if __name__ == "__main__":
    main()
