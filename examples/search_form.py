#!/usr/bin/env python3
"""Form-driven dynamic pages: a bibliography search.

The paper (section 1): "Web pages that depend on user input, e.g., from
forms, cannot be materialized statically, but must be created
dynamically."  This example declares a parameterized StruQL query whose
``kw`` variable is bound per request; each submission evaluates the
query at click time and renders the result page, with per-term caching.

Run:  python examples/search_form.py [entries] [terms...]
"""

import sys

from repro.datagen import generate_bibtex
from repro.site import FormHandler
from repro.templates import TemplateSet
from repro.wrappers import BibTexWrapper

SEARCH_QUERY = """
input BIBTEX
{ where Publications(x), x -> "title" -> t, contains(t, kw)
  create Results(kw), Hit(kw, x)
  link Hit(kw, x) -> "title" -> t,
       Results(kw) -> "Hit" -> Hit(kw, x),
       Results(kw) -> "term" -> kw }
{ where Publications(x), x -> "title" -> t, contains(t, kw),
        x -> "year" -> y
  link Hit(kw, x) -> "year" -> y }
output SearchSite
"""


def templates() -> TemplateSet:
    ts = TemplateSet()
    ts.add("Results", """<HTML><BODY>
<H1>Search results for "<SFMT @term>"</H1>
<SFMTLIST @Hit FORMAT=EMBED DELIM="<BR>">
</BODY></HTML>""")
    ts.add("Hit", '<SFMT @title> (<SFMT @year>)', as_page=False)
    return ts


def main() -> None:
    entries = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    terms = sys.argv[2:] or ["Optimizing", "Web", "optimizing"]
    data = BibTexWrapper().wrap(generate_bibtex(entries), "BIBTEX")
    handler = FormHandler(SEARCH_QUERY, data, templates(),
                          result_fn="Results", params=("kw",))
    for term in terms:
        response = handler.submit(kw=term)
        hits = response.html.count("<BR>") + 1 if "Hit" else 0
        cached = " (cached)" if response.from_cache else ""
        print(f"--- ?kw={term}  "
              f"[{response.seconds * 1000:.2f} ms{cached}] ---")
        print(response.html)
        print()
    print(f"stats: {handler.stats}")


if __name__ == "__main__":
    main()
