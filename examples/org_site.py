#!/usr/bin/env python3
"""The AT&T-style organization site: five sources, two versions.

Reproduces the paper's flagship experience (section 5.1): a mediator
integrates five data sources (two relational tables, a structured
project file, a BibTeX bibliography, and existing HTML pages) into one
data graph; a single StruQL query defines the site; the *external*
version reuses the same site graph with five changed templates.

Run:  python examples/org_site.py [people] [output_dir]
"""

import os
import sys
import tempfile

from repro.datagen import build_org_mediator
from repro.site import ReachableFromRoot, RequiredLink, Verifier
from repro.sites import build_org_site, org_templates


def main() -> None:
    people = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    out_dir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
        prefix="strudel-org-")

    mediator = build_org_mediator(people=people)
    data = mediator.warehouse()
    print(f"mediated {len(mediator.sources())} sources -> data graph with "
          f"{data.node_count} objects / {data.edge_count} edges")
    print(f"  collections: {', '.join(data.collection_names())}")

    internal = build_org_site(data=data.copy("ORGDATA"))
    external = build_org_site(data=data.copy("ORGDATA"), external=True)

    metrics = internal.metrics()
    print(f"\ninternal site: {metrics.query_lines}-line query, "
          f"{metrics.template_count} templates "
          f"({metrics.template_lines} lines), {metrics.pages} pages "
          f"(paper: 115-line query, 17 templates/380 lines, ~400 users)")

    changed = [name for name in internal.templates.names()
               if internal.templates.get(name).source
               != external.templates.get(name).source]
    print(f"external site: 0 new queries, {len(changed)} changed "
          f"templates ({', '.join(changed)}) — paper: five")

    report = internal.verify([
        ReachableFromRoot("RootPage"),
        RequiredLink("OrgPage", "Member"),
        RequiredLink("ProjectPage", "Member", "PersonCard"),
    ])
    print(f"\nintegrity constraints: "
          f"{'all hold' if report.ok else report}")

    internal_dir = os.path.join(out_dir, "internal")
    external_dir = os.path.join(out_dir, "external")
    internal_pages = internal.generate(internal_dir)
    external_pages = external.generate(external_dir)
    print(f"\nwrote {len(internal_pages)} internal + "
          f"{len(external_pages)} external pages under {out_dir}")


if __name__ == "__main__":
    main()
